//! The define-by-run computation graph.
//!
//! A [`Tape`] owns every intermediate value of a forward pass. Each operation
//! appends a [`Node`] recording its inputs, so the reverse pass is a single
//! backwards walk over the node vector (creation order is already a
//! topological order).

use litho_fft::{fft2, fftshift, ifft2, ifftshift};
use litho_math::util::{center_crop, center_pad};
use litho_math::{Complex64, ComplexMatrix, RealMatrix};

/// Identifier of a node on a [`Tape`].
pub type NodeId = usize;

/// Metadata describing a 2-D convolution node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Number of input channels (input matrix is `in_channels·height` rows tall).
    pub in_channels: usize,
    /// Number of output channels.
    pub out_channels: usize,
    /// Kernel height (odd).
    pub kernel_h: usize,
    /// Kernel width (odd).
    pub kernel_w: usize,
    /// Spatial height of one channel plane.
    pub height: usize,
    /// Spatial width of one channel plane.
    pub width: usize,
}

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Neg(NodeId),
    ScaleRe(NodeId, f64),
    Scale(NodeId, Complex64),
    Mul(NodeId, NodeId),
    MatMul(NodeId, NodeId),
    Conj(NodeId),
    CRelu(NodeId),
    Relu(NodeId),
    Sigmoid(NodeId),
    AbsSq(NodeId),
    Fft2(NodeId),
    Ifft2(NodeId),
    FftShift(NodeId),
    IfftShift(NodeId),
    CenterCrop(NodeId),
    CenterPad(NodeId),
    Column {
        input: NodeId,
        col: usize,
    },
    AddBiasRow {
        input: NodeId,
        bias: NodeId,
    },
    SumAll(NodeId),
    SumReal(NodeId),
    MeanReal(NodeId),
    MseReal {
        pred: NodeId,
        target: RealMatrix,
    },
    Conv2d {
        input: NodeId,
        weight: NodeId,
        bias: NodeId,
        spec: ConvSpec,
    },
}

#[derive(Debug, Clone)]
struct Node {
    value: ComplexMatrix,
    op: Op,
    requires_grad: bool,
}

/// A reverse-mode autodiff tape over complex matrices.
///
/// Values are created with [`Tape::leaf`] (trainable / gradient-carrying) or
/// [`Tape::constant`] (no gradient), combined with the operation methods, and
/// differentiated with [`Tape::backward`].
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
    grads: Vec<Option<ComplexMatrix>>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: ComplexMatrix, op: Op, requires_grad: bool) -> NodeId {
        self.nodes.push(Node {
            value,
            op,
            requires_grad,
        });
        self.grads.push(None);
        self.nodes.len() - 1
    }

    fn rg(&self, id: NodeId) -> bool {
        self.nodes[id].requires_grad
    }

    /// Adds a leaf value. When `requires_grad` is true its gradient is kept
    /// after [`Tape::backward`].
    pub fn leaf(&mut self, value: ComplexMatrix, requires_grad: bool) -> NodeId {
        self.push(value, Op::Leaf, requires_grad)
    }

    /// Adds a constant (non-differentiated) complex value.
    pub fn constant(&mut self, value: ComplexMatrix) -> NodeId {
        self.leaf(value, false)
    }

    /// Adds a constant real matrix, lifted to complex with zero imaginary part.
    pub fn constant_real(&mut self, value: &RealMatrix) -> NodeId {
        self.leaf(value.to_complex(), false)
    }

    /// Value of a node.
    pub fn value(&self, id: NodeId) -> &ComplexMatrix {
        &self.nodes[id].value
    }

    /// Gradient of a node after [`Tape::backward`], if it was computed.
    ///
    /// The gradient uses the packed Wirtinger convention
    /// `∂L/∂Re(x) + i·∂L/∂Im(x)`.
    pub fn grad(&self, id: NodeId) -> Option<&ComplexMatrix> {
        self.grads[id].as_ref()
    }

    // ----------------------------------------------------------------- ops

    /// Element-wise sum `a + b`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = &self.nodes[a].value + &self.nodes[b].value;
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::Add(a, b), rg)
    }

    /// Element-wise difference `a - b`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = &self.nodes[a].value - &self.nodes[b].value;
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::Sub(a, b), rg)
    }

    /// Negation `-a`.
    pub fn neg(&mut self, a: NodeId) -> NodeId {
        let value = self.nodes[a].value.map(|z| -z);
        let rg = self.rg(a);
        self.push(value, Op::Neg(a), rg)
    }

    /// Scaling by a real constant.
    pub fn scale_re(&mut self, a: NodeId, s: f64) -> NodeId {
        let value = self.nodes[a].value.scale_re(s);
        let rg = self.rg(a);
        self.push(value, Op::ScaleRe(a, s), rg)
    }

    /// Scaling by a complex constant.
    pub fn scale(&mut self, a: NodeId, s: Complex64) -> NodeId {
        let value = self.nodes[a].value.scale(s);
        let rg = self.rg(a);
        self.push(value, Op::Scale(a, s), rg)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.nodes[a].value.hadamard(&self.nodes[b].value);
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::Mul(a, b), rg)
    }

    /// Matrix product `a · b`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = litho_math::linalg::cmatmul(&self.nodes[a].value, &self.nodes[b].value);
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::MatMul(a, b), rg)
    }

    /// Element-wise complex conjugate.
    pub fn conj(&mut self, a: NodeId) -> NodeId {
        let value = self.nodes[a].value.conj();
        let rg = self.rg(a);
        self.push(value, Op::Conj(a), rg)
    }

    /// Complex ReLU: `CReLU(z) = ReLU(Re z) + i·ReLU(Im z)` (paper Eq. (11)).
    pub fn crelu(&mut self, a: NodeId) -> NodeId {
        let value = self.nodes[a]
            .value
            .map(|z| Complex64::new(z.re.max(0.0), z.im.max(0.0)));
        let rg = self.rg(a);
        self.push(value, Op::CRelu(a), rg)
    }

    /// Real ReLU applied to the real part (imaginary part is dropped). Used by
    /// the real-valued baseline networks.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let value = self.nodes[a]
            .value
            .map(|z| Complex64::new(z.re.max(0.0), 0.0));
        let rg = self.rg(a);
        self.push(value, Op::Relu(a), rg)
    }

    /// Logistic sigmoid applied to the real part (imaginary part is dropped).
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let value = self.nodes[a]
            .value
            .map(|z| Complex64::new(1.0 / (1.0 + (-z.re).exp()), 0.0));
        let rg = self.rg(a);
        self.push(value, Op::Sigmoid(a), rg)
    }

    /// Element-wise squared magnitude `|z|²` (a real-valued matrix stored with
    /// zero imaginary part). This is the intensity-formation step of the SOCS
    /// formula.
    pub fn abs_sq(&mut self, a: NodeId) -> NodeId {
        let value = self.nodes[a].value.map(|z| Complex64::new(z.abs_sq(), 0.0));
        let rg = self.rg(a);
        self.push(value, Op::AbsSq(a), rg)
    }

    /// Forward 2-D FFT (unnormalized).
    pub fn fft2(&mut self, a: NodeId) -> NodeId {
        let value = fft2(&self.nodes[a].value);
        let rg = self.rg(a);
        self.push(value, Op::Fft2(a), rg)
    }

    /// Inverse 2-D FFT (normalized by `1/N`).
    pub fn ifft2(&mut self, a: NodeId) -> NodeId {
        let value = ifft2(&self.nodes[a].value);
        let rg = self.rg(a);
        self.push(value, Op::Ifft2(a), rg)
    }

    /// Moves the DC bin to the matrix center.
    pub fn fftshift(&mut self, a: NodeId) -> NodeId {
        let value = fftshift(&self.nodes[a].value);
        let rg = self.rg(a);
        self.push(value, Op::FftShift(a), rg)
    }

    /// Moves the DC bin back to the corner.
    pub fn ifftshift(&mut self, a: NodeId) -> NodeId {
        let value = ifftshift(&self.nodes[a].value);
        let rg = self.rg(a);
        self.push(value, Op::IfftShift(a), rg)
    }

    /// DC-aligned centered crop to `rows × cols`.
    ///
    /// # Panics
    ///
    /// Panics if the output is larger than the input.
    pub fn center_crop(&mut self, a: NodeId, rows: usize, cols: usize) -> NodeId {
        let value = center_crop(&self.nodes[a].value, rows, cols);
        let rg = self.rg(a);
        self.push(value, Op::CenterCrop(a), rg)
    }

    /// DC-aligned centered zero-padding to `rows × cols`.
    ///
    /// # Panics
    ///
    /// Panics if the output is smaller than the input.
    pub fn center_pad(&mut self, a: NodeId, rows: usize, cols: usize) -> NodeId {
        let value = center_pad(&self.nodes[a].value, rows, cols);
        let rg = self.rg(a);
        self.push(value, Op::CenterPad(a), rg)
    }

    /// Extracts column `col` of a `(rows·cols) × C` matrix and reshapes it into
    /// a `rows × cols` matrix (row-major). Used to turn one CMLP output column
    /// into one optical kernel.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range or the row count is not `rows·cols`.
    pub fn column_as_matrix(&mut self, a: NodeId, col: usize, rows: usize, cols: usize) -> NodeId {
        let src = &self.nodes[a].value;
        assert!(col < src.cols(), "column {col} out of range");
        assert_eq!(src.rows(), rows * cols, "row count must equal rows·cols");
        let value = ComplexMatrix::from_fn(rows, cols, |i, j| src[(i * cols + j, col)]);
        let rg = self.rg(a);
        self.push(value, Op::Column { input: a, col }, rg)
    }

    /// Adds a `1 × C` bias row to every row of a `B × C` matrix.
    ///
    /// # Panics
    ///
    /// Panics if the bias is not a single row of matching width.
    pub fn add_bias_row(&mut self, input: NodeId, bias: NodeId) -> NodeId {
        let x = &self.nodes[input].value;
        let b = &self.nodes[bias].value;
        assert_eq!(b.rows(), 1, "bias must be a row vector");
        assert_eq!(b.cols(), x.cols(), "bias width must match input width");
        let value = x.map_indexed(|_, j, v| v + b[(0, j)]);
        let rg = self.rg(input) || self.rg(bias);
        self.push(value, Op::AddBiasRow { input, bias }, rg)
    }

    /// Sum of all elements (complex scalar, returned as a `1 × 1` node).
    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let value = ComplexMatrix::filled(1, 1, self.nodes[a].value.sum());
        let rg = self.rg(a);
        self.push(value, Op::SumAll(a), rg)
    }

    /// Sum of the real parts of all elements (real scalar as a `1 × 1` node).
    pub fn sum_real(&mut self, a: NodeId) -> NodeId {
        let s: f64 = self.nodes[a].value.iter().map(|z| z.re).sum();
        let rg = self.rg(a);
        self.push(
            ComplexMatrix::filled(1, 1, Complex64::from_real(s)),
            Op::SumReal(a),
            rg,
        )
    }

    /// Mean of the real parts of all elements (real scalar as a `1 × 1` node).
    pub fn mean_real(&mut self, a: NodeId) -> NodeId {
        let n = self.nodes[a].value.len() as f64;
        let s: f64 = self.nodes[a].value.iter().map(|z| z.re).sum();
        let rg = self.rg(a);
        self.push(
            ComplexMatrix::filled(1, 1, Complex64::from_real(s / n)),
            Op::MeanReal(a),
            rg,
        )
    }

    /// Mean-squared-error loss between the real part of `pred` and a constant
    /// real `target` (paper Eq. (5)).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mse_loss(&mut self, pred: NodeId, target: &RealMatrix) -> NodeId {
        let p = &self.nodes[pred].value;
        assert_eq!(
            p.shape(),
            target.shape(),
            "prediction/target shape mismatch"
        );
        let n = target.len() as f64;
        let mse: f64 = p
            .iter()
            .zip(target.iter())
            .map(|(z, &t)| (z.re - t) * (z.re - t))
            .sum::<f64>()
            / n;
        let rg = self.rg(pred);
        self.push(
            ComplexMatrix::filled(1, 1, Complex64::from_real(mse)),
            Op::MseReal {
                pred,
                target: target.clone(),
            },
            rg,
        )
    }

    /// 2-D convolution with stride 1 and zero "same" padding over stacked
    /// channel planes.
    ///
    /// * `input` has shape `(in_channels·height) × width`: channel planes are
    ///   stacked vertically.
    /// * `weight` has shape `(out_channels·in_channels·kernel_h) × kernel_w`.
    /// * `bias` has shape `out_channels × 1`.
    /// * The output has shape `(out_channels·height) × width`.
    ///
    /// # Panics
    ///
    /// Panics if any shape is inconsistent with `spec` or the kernel size is
    /// even.
    pub fn conv2d(
        &mut self,
        input: NodeId,
        weight: NodeId,
        bias: NodeId,
        spec: ConvSpec,
    ) -> NodeId {
        let x = &self.nodes[input].value;
        let w = &self.nodes[weight].value;
        let b = &self.nodes[bias].value;
        assert!(
            spec.kernel_h % 2 == 1 && spec.kernel_w % 2 == 1,
            "kernel size must be odd"
        );
        assert_eq!(
            x.shape(),
            (spec.in_channels * spec.height, spec.width),
            "conv2d input shape mismatch"
        );
        assert_eq!(
            w.shape(),
            (
                spec.out_channels * spec.in_channels * spec.kernel_h,
                spec.kernel_w
            ),
            "conv2d weight shape mismatch"
        );
        assert_eq!(
            b.shape(),
            (spec.out_channels, 1),
            "conv2d bias shape mismatch"
        );

        let value = conv2d_forward(x, w, b, spec);
        let rg = self.rg(input) || self.rg(weight) || self.rg(bias);
        self.push(
            value,
            Op::Conv2d {
                input,
                weight,
                bias,
                spec,
            },
            rg,
        )
    }

    // ------------------------------------------------------------ backward

    /// Runs the reverse pass from a scalar (`1 × 1`) node, filling in the
    /// gradients of every node with `requires_grad`.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not a `1 × 1` node.
    pub fn backward(&mut self, root: NodeId) {
        assert_eq!(
            self.nodes[root].value.shape(),
            (1, 1),
            "backward requires a scalar root node"
        );
        for g in self.grads.iter_mut() {
            *g = None;
        }
        self.grads[root] = Some(ComplexMatrix::filled(1, 1, Complex64::ONE));

        for id in (0..self.nodes.len()).rev() {
            if self.grads[id].is_none() || !self.nodes[id].requires_grad {
                continue;
            }
            let grad_out = self.grads[id].clone().expect("checked above");
            let op = self.nodes[id].op.clone();
            match op {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    self.accumulate(a, grad_out.clone());
                    self.accumulate(b, grad_out);
                }
                Op::Sub(a, b) => {
                    self.accumulate(a, grad_out.clone());
                    self.accumulate(b, grad_out.map(|z| -z));
                }
                Op::Neg(a) => self.accumulate(a, grad_out.map(|z| -z)),
                Op::ScaleRe(a, s) => self.accumulate(a, grad_out.scale_re(s)),
                Op::Scale(a, s) => self.accumulate(a, grad_out.scale(s.conj())),
                Op::Mul(a, b) => {
                    let ga = grad_out.hadamard(&self.nodes[b].value.conj());
                    let gb = grad_out.hadamard(&self.nodes[a].value.conj());
                    self.accumulate(a, ga);
                    self.accumulate(b, gb);
                }
                Op::MatMul(a, b) => {
                    let ga = litho_math::linalg::cmatmul(&grad_out, &self.nodes[b].value.adjoint());
                    let gb = litho_math::linalg::cmatmul(&self.nodes[a].value.adjoint(), &grad_out);
                    self.accumulate(a, ga);
                    self.accumulate(b, gb);
                }
                Op::Conj(a) => self.accumulate(a, grad_out.conj()),
                Op::CRelu(a) => {
                    let x = &self.nodes[a].value;
                    let g = grad_out.zip_map(x, |g, v| {
                        Complex64::new(
                            if v.re > 0.0 { g.re } else { 0.0 },
                            if v.im > 0.0 { g.im } else { 0.0 },
                        )
                    });
                    self.accumulate(a, g);
                }
                Op::Relu(a) => {
                    let x = &self.nodes[a].value;
                    let g = grad_out.zip_map(x, |g, v| {
                        Complex64::new(if v.re > 0.0 { g.re } else { 0.0 }, 0.0)
                    });
                    self.accumulate(a, g);
                }
                Op::Sigmoid(a) => {
                    let y = &self.nodes[id].value;
                    let g =
                        grad_out.zip_map(y, |g, s| Complex64::new(g.re * s.re * (1.0 - s.re), 0.0));
                    self.accumulate(a, g);
                }
                Op::AbsSq(a) => {
                    let x = &self.nodes[a].value;
                    let g = grad_out.zip_map(x, |g, v| v.scale(2.0 * g.re));
                    self.accumulate(a, g);
                }
                Op::Fft2(a) => {
                    let n = (grad_out.rows() * grad_out.cols()) as f64;
                    self.accumulate(a, ifft2(&grad_out).scale_re(n));
                }
                Op::Ifft2(a) => {
                    let n = (grad_out.rows() * grad_out.cols()) as f64;
                    self.accumulate(a, fft2(&grad_out).scale_re(1.0 / n));
                }
                Op::FftShift(a) => self.accumulate(a, ifftshift(&grad_out)),
                Op::IfftShift(a) => self.accumulate(a, fftshift(&grad_out)),
                Op::CenterCrop(a) => {
                    let (r, c) = self.nodes[a].value.shape();
                    self.accumulate(a, center_pad(&grad_out, r, c));
                }
                Op::CenterPad(a) => {
                    let (r, c) = self.nodes[a].value.shape();
                    self.accumulate(a, center_crop(&grad_out, r, c));
                }
                Op::Column { input, col } => {
                    let (rows_in, cols_in) = self.nodes[input].value.shape();
                    let cols_small = grad_out.cols();
                    let mut g = ComplexMatrix::zeros(rows_in, cols_in);
                    for i in 0..grad_out.rows() {
                        for j in 0..cols_small {
                            g[(i * cols_small + j, col)] = grad_out[(i, j)];
                        }
                    }
                    self.accumulate(input, g);
                }
                Op::AddBiasRow { input, bias } => {
                    self.accumulate(input, grad_out.clone());
                    let mut gb = ComplexMatrix::zeros(1, grad_out.cols());
                    for i in 0..grad_out.rows() {
                        for j in 0..grad_out.cols() {
                            gb[(0, j)] += grad_out[(i, j)];
                        }
                    }
                    self.accumulate(bias, gb);
                }
                Op::SumAll(a) => {
                    let (r, c) = self.nodes[a].value.shape();
                    let g = ComplexMatrix::filled(r, c, grad_out[(0, 0)]);
                    self.accumulate(a, g);
                }
                Op::SumReal(a) => {
                    let (r, c) = self.nodes[a].value.shape();
                    let g = ComplexMatrix::filled(r, c, Complex64::from_real(grad_out[(0, 0)].re));
                    self.accumulate(a, g);
                }
                Op::MeanReal(a) => {
                    let (r, c) = self.nodes[a].value.shape();
                    let scale = grad_out[(0, 0)].re / (r * c) as f64;
                    let g = ComplexMatrix::filled(r, c, Complex64::from_real(scale));
                    self.accumulate(a, g);
                }
                Op::MseReal { pred, target } => {
                    let p = &self.nodes[pred].value;
                    let n = target.len() as f64;
                    let upstream = grad_out[(0, 0)].re;
                    let g = p.map_indexed(|i, j, z| {
                        Complex64::from_real(2.0 * (z.re - target[(i, j)]) / n * upstream)
                    });
                    self.accumulate(pred, g);
                }
                Op::Conv2d {
                    input,
                    weight,
                    bias,
                    spec,
                } => {
                    let (gi, gw, gb) = conv2d_backward(
                        &self.nodes[input].value,
                        &self.nodes[weight].value,
                        &grad_out,
                        spec,
                    );
                    self.accumulate(input, gi);
                    self.accumulate(weight, gw);
                    self.accumulate(bias, gb);
                }
            }
        }
    }

    fn accumulate(&mut self, id: NodeId, grad: ComplexMatrix) {
        if !self.nodes[id].requires_grad {
            return;
        }
        match &mut self.grads[id] {
            Some(existing) => *existing += &grad,
            slot @ None => *slot = Some(grad),
        }
    }
}

fn conv2d_forward(
    x: &ComplexMatrix,
    w: &ComplexMatrix,
    b: &ComplexMatrix,
    spec: ConvSpec,
) -> ComplexMatrix {
    let ConvSpec {
        in_channels,
        out_channels,
        kernel_h,
        kernel_w,
        height,
        width,
    } = spec;
    let ph = kernel_h / 2;
    let pw = kernel_w / 2;
    let mut out = ComplexMatrix::zeros(out_channels * height, width);
    for oc in 0..out_channels {
        for y in 0..height {
            for xcol in 0..width {
                let mut acc = b[(oc, 0)];
                for ic in 0..in_channels {
                    for dy in 0..kernel_h {
                        let iy = y as isize + dy as isize - ph as isize;
                        if iy < 0 || iy >= height as isize {
                            continue;
                        }
                        for dx in 0..kernel_w {
                            let ix = xcol as isize + dx as isize - pw as isize;
                            if ix < 0 || ix >= width as isize {
                                continue;
                            }
                            let wv = w[((oc * in_channels + ic) * kernel_h + dy, dx)];
                            let xv = x[(ic * height + iy as usize, ix as usize)];
                            acc += wv * xv;
                        }
                    }
                }
                out[(oc * height + y, xcol)] = acc;
            }
        }
    }
    out
}

fn conv2d_backward(
    x: &ComplexMatrix,
    w: &ComplexMatrix,
    grad_out: &ComplexMatrix,
    spec: ConvSpec,
) -> (ComplexMatrix, ComplexMatrix, ComplexMatrix) {
    let ConvSpec {
        in_channels,
        out_channels,
        kernel_h,
        kernel_w,
        height,
        width,
    } = spec;
    let ph = kernel_h / 2;
    let pw = kernel_w / 2;
    let mut gx = ComplexMatrix::zeros(in_channels * height, width);
    let mut gw = ComplexMatrix::zeros(out_channels * in_channels * kernel_h, kernel_w);
    let mut gb = ComplexMatrix::zeros(out_channels, 1);

    for oc in 0..out_channels {
        for y in 0..height {
            for xcol in 0..width {
                let go = grad_out[(oc * height + y, xcol)];
                if go == Complex64::ZERO {
                    continue;
                }
                gb[(oc, 0)] += go;
                for ic in 0..in_channels {
                    for dy in 0..kernel_h {
                        let iy = y as isize + dy as isize - ph as isize;
                        if iy < 0 || iy >= height as isize {
                            continue;
                        }
                        for dx in 0..kernel_w {
                            let ix = xcol as isize + dx as isize - pw as isize;
                            if ix < 0 || ix >= width as isize {
                                continue;
                            }
                            let widx = ((oc * in_channels + ic) * kernel_h + dy, dx);
                            let xidx = (ic * height + iy as usize, ix as usize);
                            gx[xidx] += go * w[widx].conj();
                            gw[widx] += go * x[xidx].conj();
                        }
                    }
                }
            }
        }
    }
    (gx, gw, gb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_math::DeterministicRng;

    fn random_complex(rows: usize, cols: usize, seed: u64) -> ComplexMatrix {
        let mut rng = DeterministicRng::new(seed);
        ComplexMatrix::from_fn(rows, cols, |_, _| rng.normal_complex(0.0, 1.0))
    }

    #[test]
    fn leaf_and_constant_flags() {
        let mut tape = Tape::new();
        let a = tape.leaf(ComplexMatrix::zeros(2, 2), true);
        let b = tape.constant(ComplexMatrix::zeros(2, 2));
        let c = tape.add(a, b);
        let loss = tape.sum_real(c);
        tape.backward(loss);
        assert!(tape.grad(a).is_some());
        assert!(tape.grad(b).is_none());
        assert_eq!(tape.len(), 4);
        assert!(!tape.is_empty());
    }

    #[test]
    fn add_and_sub_gradients() {
        let mut tape = Tape::new();
        let a = tape.leaf(random_complex(3, 3, 1), true);
        let b = tape.leaf(random_complex(3, 3, 2), true);
        let s = tape.sub(a, b);
        let loss = tape.sum_real(s);
        tape.backward(loss);
        for z in tape.grad(a).unwrap().iter() {
            assert_eq!(*z, Complex64::ONE);
        }
        for z in tape.grad(b).unwrap().iter() {
            assert_eq!(*z, -Complex64::ONE);
        }
    }

    #[test]
    fn mul_gradient_matches_wirtinger_rule() {
        // L = Re(sum(a ⊙ b)): gradient of a is Re-packed conj(b)… checked
        // against the analytic value for a single element.
        let mut tape = Tape::new();
        let a_val = ComplexMatrix::filled(1, 1, Complex64::new(2.0, -1.0));
        let b_val = ComplexMatrix::filled(1, 1, Complex64::new(0.5, 3.0));
        let a = tape.leaf(a_val, true);
        let b = tape.leaf(b_val, true);
        let p = tape.mul(a, b);
        let loss = tape.sum_real(p);
        tape.backward(loss);
        // L = Re(ab) = a_re b_re - a_im b_im → dL/da_re = b_re, dL/da_im = -b_im.
        let ga = tape.grad(a).unwrap()[(0, 0)];
        assert!((ga.re - 0.5).abs() < 1e-12);
        assert!((ga.im + 3.0).abs() < 1e-12);
        let gb = tape.grad(b).unwrap()[(0, 0)];
        assert!((gb.re - 2.0).abs() < 1e-12);
        assert!((gb.im - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matmul_shapes_and_gradient_shapes() {
        let mut tape = Tape::new();
        let a = tape.leaf(random_complex(4, 3, 3), true);
        let b = tape.leaf(random_complex(3, 5, 4), true);
        let c = tape.matmul(a, b);
        assert_eq!(tape.value(c).shape(), (4, 5));
        let loss = tape.sum_real(c);
        tape.backward(loss);
        assert_eq!(tape.grad(a).unwrap().shape(), (4, 3));
        assert_eq!(tape.grad(b).unwrap().shape(), (3, 5));
    }

    #[test]
    fn crelu_masks_negative_parts() {
        let mut tape = Tape::new();
        let x = tape.leaf(
            ComplexMatrix::from_vec(
                1,
                2,
                vec![Complex64::new(1.0, -2.0), Complex64::new(-3.0, 4.0)],
            ),
            true,
        );
        let y = tape.crelu(x);
        assert_eq!(tape.value(y)[(0, 0)], Complex64::new(1.0, 0.0));
        assert_eq!(tape.value(y)[(0, 1)], Complex64::new(0.0, 4.0));
        let loss = tape.sum_real(y);
        tape.backward(loss);
        // Only positive real/imag parts pass gradient; loss uses only Re so
        // imaginary gradients are zero anyway.
        let g = tape.grad(x).unwrap();
        assert_eq!(g[(0, 0)], Complex64::new(1.0, 0.0));
        assert_eq!(g[(0, 1)], Complex64::new(0.0, 0.0));
    }

    #[test]
    fn abs_sq_gradient() {
        let mut tape = Tape::new();
        let z0 = Complex64::new(1.5, -2.0);
        let x = tape.leaf(ComplexMatrix::filled(1, 1, z0), true);
        let y = tape.abs_sq(x);
        assert!((tape.value(y)[(0, 0)].re - z0.abs_sq()).abs() < 1e-12);
        let loss = tape.sum_real(y);
        tape.backward(loss);
        // d(a² + b²)/d(a, b) = (2a, 2b).
        let g = tape.grad(x).unwrap()[(0, 0)];
        assert!((g.re - 2.0 * z0.re).abs() < 1e-12);
        assert!((g.im - 2.0 * z0.im).abs() < 1e-12);
    }

    #[test]
    fn fft_round_trip_gradient_is_identity() {
        // loss = MSE(Re(ifft2(fft2(x))), target): gradient w.r.t. x equals the
        // plain MSE gradient because the round trip is the identity.
        let mut tape = Tape::new();
        let x_val = random_complex(4, 4, 9);
        let target = x_val.re().map(|v| v + 0.5);
        let x = tape.leaf(x_val.clone(), true);
        let f = tape.fft2(x);
        let b = tape.ifft2(f);
        let loss = tape.mse_loss(b, &target);
        tape.backward(loss);
        let g = tape.grad(x).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let expected = 2.0 * (x_val[(i, j)].re - target[(i, j)]) / 16.0;
                assert!((g[(i, j)].re - expected).abs() < 1e-9);
                assert!(g[(i, j)].im.abs() < 1e-9);
            }
        }
    }

    #[test]
    fn crop_pad_gradients_are_adjoint() {
        let mut tape = Tape::new();
        let x = tape.leaf(random_complex(6, 6, 10), true);
        let c = tape.center_crop(x, 4, 4);
        let p = tape.center_pad(c, 6, 6);
        let loss = tape.sum_real(p);
        tape.backward(loss);
        let g = tape.grad(x).unwrap();
        // Border elements were cropped away → zero gradient; interior gets 1.
        assert_eq!(g[(0, 0)], Complex64::ZERO);
        assert_eq!(g[(3, 3)], Complex64::ONE);
    }

    #[test]
    fn column_as_matrix_extracts_and_backprops() {
        let mut tape = Tape::new();
        let x = tape.leaf(random_complex(6, 3, 11), true);
        let k = tape.column_as_matrix(x, 1, 2, 3);
        assert_eq!(tape.value(k).shape(), (2, 3));
        assert_eq!(tape.value(k)[(1, 2)], tape.value(x)[(5, 1)]);
        let loss = tape.sum_real(k);
        tape.backward(loss);
        let g = tape.grad(x).unwrap();
        assert_eq!(g[(0, 1)], Complex64::ONE);
        assert_eq!(g[(0, 0)], Complex64::ZERO);
        assert_eq!(g[(5, 2)], Complex64::ZERO);
    }

    #[test]
    fn bias_row_broadcast_gradient_sums_rows() {
        let mut tape = Tape::new();
        let x = tape.leaf(random_complex(4, 3, 12), true);
        let b = tape.leaf(random_complex(1, 3, 13), true);
        let y = tape.add_bias_row(x, b);
        let loss = tape.sum_real(y);
        tape.backward(loss);
        let gb = tape.grad(b).unwrap();
        for j in 0..3 {
            assert!((gb[(0, j)].re - 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mse_loss_value_and_gradient() {
        let mut tape = Tape::new();
        let pred = RealMatrix::from_vec(1, 2, vec![1.0, 3.0]);
        let target = RealMatrix::from_vec(1, 2, vec![0.0, 1.0]);
        let p = tape.leaf(pred.to_complex(), true);
        let loss = tape.mse_loss(p, &target);
        assert!((tape.value(loss)[(0, 0)].re - 2.5).abs() < 1e-12);
        tape.backward(loss);
        let g = tape.grad(p).unwrap();
        assert!((g[(0, 0)].re - 1.0).abs() < 1e-12);
        assert!((g[(0, 1)].re - 2.0).abs() < 1e-12);
    }

    #[test]
    fn relu_and_sigmoid_forward_backward() {
        let mut tape = Tape::new();
        let x = tape.leaf(
            ComplexMatrix::from_vec(
                1,
                2,
                vec![Complex64::new(-1.0, 0.0), Complex64::new(2.0, 0.0)],
            ),
            true,
        );
        let r = tape.relu(x);
        assert_eq!(tape.value(r)[(0, 0)].re, 0.0);
        assert_eq!(tape.value(r)[(0, 1)].re, 2.0);
        let s = tape.sigmoid(r);
        let v = tape.value(s)[(0, 1)].re;
        assert!((v - 1.0 / (1.0 + (-2.0f64).exp())).abs() < 1e-12);
        let loss = tape.sum_real(s);
        tape.backward(loss);
        let g = tape.grad(x).unwrap();
        assert_eq!(g[(0, 0)].re, 0.0);
        assert!((g[(0, 1)].re - v * (1.0 - v)).abs() < 1e-12);
    }

    #[test]
    fn sum_and_mean_real() {
        let mut tape = Tape::new();
        let x = tape.leaf(ComplexMatrix::filled(2, 2, Complex64::new(3.0, 1.0)), true);
        let s = tape.sum_all(x);
        assert_eq!(tape.value(s)[(0, 0)], Complex64::new(12.0, 4.0));
        let m = tape.mean_real(x);
        assert_eq!(tape.value(m)[(0, 0)].re, 3.0);
        tape.backward(m);
        let g = tape.grad(x).unwrap();
        assert!((g[(0, 0)].re - 0.25).abs() < 1e-12);
    }

    #[test]
    fn conv2d_identity_kernel_reproduces_input() {
        let spec = ConvSpec {
            in_channels: 1,
            out_channels: 1,
            kernel_h: 3,
            kernel_w: 3,
            height: 5,
            width: 5,
        };
        let mut tape = Tape::new();
        let x_val = random_complex(5, 5, 20);
        let x = tape.constant(x_val.clone());
        // Delta kernel.
        let mut w_val = ComplexMatrix::zeros(3, 3);
        w_val[(1, 1)] = Complex64::ONE;
        let w = tape.constant(w_val);
        let b = tape.constant(ComplexMatrix::zeros(1, 1));
        let y = tape.conv2d(x, w, b, spec);
        for i in 0..5 {
            for j in 0..5 {
                assert!((tape.value(y)[(i, j)] - x_val[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn conv2d_bias_gradient_counts_pixels() {
        let spec = ConvSpec {
            in_channels: 1,
            out_channels: 2,
            kernel_h: 3,
            kernel_w: 3,
            height: 4,
            width: 4,
        };
        let mut tape = Tape::new();
        let x = tape.constant(random_complex(4, 4, 21));
        let w = tape.leaf(random_complex(2 * 3, 3, 22), true);
        let b = tape.leaf(ComplexMatrix::zeros(2, 1), true);
        let y = tape.conv2d(x, w, b, spec);
        assert_eq!(tape.value(y).shape(), (8, 4));
        let loss = tape.sum_real(y);
        tape.backward(loss);
        let gb = tape.grad(b).unwrap();
        assert!((gb[(0, 0)].re - 16.0).abs() < 1e-12);
        assert!((gb[(1, 0)].re - 16.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "scalar root")]
    fn backward_from_non_scalar_panics() {
        let mut tape = Tape::new();
        let x = tape.leaf(ComplexMatrix::zeros(2, 2), true);
        tape.backward(x);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mse_shape_mismatch_panics() {
        let mut tape = Tape::new();
        let x = tape.leaf(ComplexMatrix::zeros(2, 2), true);
        let target = RealMatrix::zeros(3, 3);
        let _ = tape.mse_loss(x, &target);
    }

    #[test]
    fn gradient_accumulates_when_node_reused() {
        let mut tape = Tape::new();
        let x = tape.leaf(ComplexMatrix::filled(1, 1, Complex64::new(1.0, 0.0)), true);
        let y = tape.add(x, x); // y = 2x
        let loss = tape.sum_real(y);
        tape.backward(loss);
        assert!((tape.grad(x).unwrap()[(0, 0)].re - 2.0).abs() < 1e-12);
    }
}
