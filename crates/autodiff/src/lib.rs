//! Reverse-mode automatic differentiation over complex matrices.
//!
//! The Nitho training procedure (Algorithm 1 of the paper) back-propagates a
//! real-valued MSE loss through intensity formation `|E|²`, inverse FFTs,
//! spectrum products and complex-valued linear layers. Mainstream Rust ML
//! crates have little support for complex autodiff, so this crate implements
//! the required engine from scratch:
//!
//! * [`Tape`] — a define-by-run computation graph over
//!   [`litho_math::ComplexMatrix`] values. Operations append nodes;
//!   [`Tape::backward`] walks the tape in reverse and accumulates gradients.
//! * **Wirtinger convention** — for every node `x` the stored gradient is
//!   `g_x = ∂L/∂Re(x) + i·∂L/∂Im(x)` (equal to `2·∂L/∂x̄`). For purely real
//!   parameters this reduces to the ordinary gradient, and for complex
//!   parameters `x ← x − lr·g_x` is steepest descent, exactly like PyTorch's
//!   convention up to a constant factor.
//! * [`ParamStore`] — named persistent parameters living outside any tape,
//!   with binary save/load.
//! * [`optim`] — SGD (with momentum) and Adam working on packed complex
//!   gradients.
//! * [`gradcheck`] — central-difference gradient checking used by this
//!   crate's tests and by downstream model tests.
//!
//! # Example
//!
//! ```
//! use litho_autodiff::Tape;
//! use litho_math::{Complex64, ComplexMatrix};
//!
//! let mut tape = Tape::new();
//! let x = tape.leaf(ComplexMatrix::filled(1, 1, Complex64::new(2.0, 1.0)), true);
//! let y = tape.mul(x, x);            // y = x²
//! let loss = tape.sum_real(y);       // L = Re(x²)
//! tape.backward(loss);
//! let g = tape.grad(x).expect("leaf requires grad");
//! // d Re(x²) / d(re, im) = (2a, -2b) for x = a + ib
//! assert!((g[(0, 0)].re - 4.0).abs() < 1e-12);
//! assert!((g[(0, 0)].im + 2.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]

pub mod gradcheck;
pub mod optim;
pub mod params;
pub mod tape;

pub use gradcheck::check_gradients;
pub use optim::{Adam, Optimizer, Sgd};
pub use params::{ParamId, ParamStore};
pub use tape::{NodeId, Tape};
