//! Persistent, named model parameters.
//!
//! A [`Tape`](crate::Tape) is rebuilt for every training step, so trainable
//! values live outside the tape in a [`ParamStore`]. Each step the model
//! copies its parameters onto the tape as gradient-carrying leaves, runs
//! forward/backward, and hands the resulting gradients back to an optimizer
//! that updates the store in place.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use litho_math::{Complex64, ComplexMatrix, DeterministicRng, Matrix};

/// Identifier of a parameter within a [`ParamStore`].
pub type ParamId = usize;

/// A named collection of complex-matrix parameters.
///
/// # Example
///
/// ```
/// use litho_autodiff::ParamStore;
/// use litho_math::DeterministicRng;
///
/// let mut rng = DeterministicRng::new(0);
/// let mut params = ParamStore::new();
/// let w = params.add_complex_glorot("w", 4, 8, &mut rng);
/// assert_eq!(params.value(w).shape(), (4, 8));
/// assert_eq!(params.num_scalars(), 4 * 8 * 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<ComplexMatrix>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of parameters (matrices) in the store.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Adds a parameter with an explicit initial value, returning its id.
    pub fn add(&mut self, name: &str, value: ComplexMatrix) -> ParamId {
        self.names.push(name.to_owned());
        self.values.push(value);
        self.values.len() - 1
    }

    /// Adds a zero-initialized parameter.
    pub fn add_zeros(&mut self, name: &str, rows: usize, cols: usize) -> ParamId {
        self.add(name, ComplexMatrix::zeros(rows, cols))
    }

    /// Adds a complex parameter with Glorot/Xavier-style initialization: both
    /// real and imaginary parts are sampled from `N(0, 1/(rows + cols))`.
    pub fn add_complex_glorot(
        &mut self,
        name: &str,
        rows: usize,
        cols: usize,
        rng: &mut DeterministicRng,
    ) -> ParamId {
        let std_dev = (1.0 / (rows + cols) as f64).sqrt();
        let value = ComplexMatrix::from_fn(rows, cols, |_, _| rng.normal_complex(0.0, std_dev));
        self.add(name, value)
    }

    /// Adds a real-valued parameter (zero imaginary part) with Glorot-style
    /// initialization; used by the real-valued baseline networks.
    pub fn add_real_glorot(
        &mut self,
        name: &str,
        rows: usize,
        cols: usize,
        rng: &mut DeterministicRng,
    ) -> ParamId {
        let std_dev = (2.0 / (rows + cols) as f64).sqrt();
        let value = ComplexMatrix::from_fn(rows, cols, |_, _| {
            Complex64::from_real(rng.normal(0.0, std_dev))
        });
        self.add(name, value)
    }

    /// Name of a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id]
    }

    /// Current value of a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn value(&self, id: ParamId) -> &ComplexMatrix {
        &self.values[id]
    }

    /// Mutable access to a parameter value.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn value_mut(&mut self, id: ParamId) -> &mut ComplexMatrix {
        &mut self.values[id]
    }

    /// Iterates over `(id, name, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &ComplexMatrix)> {
        self.values
            .iter()
            .enumerate()
            .map(|(id, v)| (id, self.names[id].as_str(), v))
    }

    /// Total number of real scalars (each complex element counts as two).
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(|m| m.len() * 2).sum()
    }

    /// Model size in bytes assuming 32-bit storage per real scalar, matching
    /// how the paper reports model sizes (e.g. "0.41 MB").
    pub fn size_bytes_f32(&self) -> usize {
        self.num_scalars() * 4
    }

    /// Serializes all parameters to a simple binary format
    /// (`name length, name, rows, cols, interleaved f64 data` per entry).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        self.write_to(&mut w)
    }

    /// Writes the `NITHOPRM` stream (magic + entries) to a writer; the
    /// embedded-payload form used by higher-level checkpoint formats.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(b"NITHOPRM")?;
        w.write_all(&(self.values.len() as u64).to_le_bytes())?;
        for (name, value) in self.names.iter().zip(self.values.iter()) {
            let bytes = name.as_bytes();
            w.write_all(&(bytes.len() as u64).to_le_bytes())?;
            w.write_all(bytes)?;
            w.write_all(&(value.rows() as u64).to_le_bytes())?;
            w.write_all(&(value.cols() as u64).to_le_bytes())?;
            for z in value.iter() {
                w.write_all(&z.re.to_le_bytes())?;
                w.write_all(&z.im.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Loads a store previously written by [`ParamStore::save`].
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be read or has an invalid header;
    /// size fields are validated against the file length, so a truncated or
    /// corrupted file yields `InvalidData` instead of an absurd allocation.
    pub fn load(path: &Path) -> io::Result<Self> {
        let budget = std::fs::metadata(path)?.len();
        let mut r = BufReader::new(File::open(path)?);
        Self::read_from(&mut r, budget)
    }

    /// Reads a `NITHOPRM` stream (magic + entries) from a reader.
    ///
    /// `budget` is the number of bytes the stream may still legitimately
    /// contain (the remaining file size); every size field read from the
    /// stream is validated against it before anything is allocated.
    ///
    /// # Errors
    ///
    /// `InvalidData` on a bad magic, a size field exceeding the budget, or a
    /// malformed entry; otherwise any underlying reader error.
    pub fn read_from<R: Read>(r: &mut R, mut budget: u64) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != b"NITHOPRM" {
            return Err(invalid_data("bad parameter file header"));
        }
        take(&mut budget, 8, "header")?;
        let count = read_u64(r, &mut budget, "entry count")? as usize;
        // Every entry occupies at least its three size fields.
        if count as u64 > budget / 24 {
            return Err(invalid_data("entry count exceeds the file size"));
        }
        let mut store = Self::new();
        for _ in 0..count {
            let name_len = read_u64(r, &mut budget, "name length")? as usize;
            take(&mut budget, name_len as u64, "parameter name")?;
            let mut name_bytes = vec![0u8; name_len];
            r.read_exact(&mut name_bytes)?;
            let name = String::from_utf8(name_bytes)
                .map_err(|_| invalid_data("invalid parameter name"))?;
            let rows = read_u64(r, &mut budget, "row count")? as usize;
            let cols = read_u64(r, &mut budget, "column count")? as usize;
            if rows == 0 || cols == 0 {
                return Err(invalid_data("parameter matrix has a zero dimension"));
            }
            let elements = rows
                .checked_mul(cols)
                .ok_or_else(|| invalid_data("parameter shape overflows"))?;
            let data_bytes = (elements as u64)
                .checked_mul(16)
                .ok_or_else(|| invalid_data("parameter shape overflows"))?;
            take(&mut budget, data_bytes, "matrix data")?;
            let mut data = Vec::with_capacity(elements);
            let mut buf = [0u8; 16];
            for _ in 0..elements {
                r.read_exact(&mut buf)?;
                let re = f64::from_le_bytes(buf[..8].try_into().expect("8-byte slice"));
                let im = f64::from_le_bytes(buf[8..].try_into().expect("8-byte slice"));
                data.push(Complex64::new(re, im));
            }
            store.add(&name, Matrix::from_vec(rows, cols, data));
        }
        Ok(store)
    }
}

fn invalid_data(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Charges `n` bytes against the remaining stream budget; `InvalidData` when
/// a size field claims more data than the file can hold.
fn take(budget: &mut u64, n: u64, what: &str) -> io::Result<()> {
    if *budget < n {
        return Err(invalid_data(&format!(
            "{what} exceeds the remaining file size ({n} > {budget} bytes)"
        )));
    }
    *budget -= n;
    Ok(())
}

fn read_u64<R: Read>(r: &mut R, budget: &mut u64, what: &str) -> io::Result<u64> {
    take(budget, 8, what)?;
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_parameters() {
        let mut rng = DeterministicRng::new(1);
        let mut store = ParamStore::new();
        assert!(store.is_empty());
        let a = store.add_zeros("a", 2, 3);
        let b = store.add_complex_glorot("b", 3, 3, &mut rng);
        let c = store.add_real_glorot("c", 4, 1, &mut rng);
        assert_eq!(store.len(), 3);
        assert_eq!(store.name(a), "a");
        assert_eq!(store.value(b).shape(), (3, 3));
        assert!(store.value(c).iter().all(|z| z.im == 0.0));
        assert_eq!(store.num_scalars(), (6 + 9 + 4) * 2);
        assert_eq!(store.size_bytes_f32(), (6 + 9 + 4) * 2 * 4);
        let names: Vec<&str> = store.iter().map(|(_, n, _)| n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn glorot_scale_shrinks_with_fan() {
        let mut rng = DeterministicRng::new(2);
        let mut store = ParamStore::new();
        let small = store.add_complex_glorot("small", 4, 4, &mut rng);
        let large = store.add_complex_glorot("large", 256, 256, &mut rng);
        let rms =
            |m: &ComplexMatrix| (m.iter().map(|z| z.abs_sq()).sum::<f64>() / m.len() as f64).sqrt();
        assert!(rms(store.value(small)) > rms(store.value(large)));
    }

    #[test]
    fn mutate_value_in_place() {
        let mut store = ParamStore::new();
        let id = store.add_zeros("w", 1, 1);
        store.value_mut(id)[(0, 0)] = Complex64::new(5.0, -1.0);
        assert_eq!(store.value(id)[(0, 0)], Complex64::new(5.0, -1.0));
    }

    #[test]
    fn save_load_roundtrip() {
        let mut rng = DeterministicRng::new(3);
        let mut store = ParamStore::new();
        store.add_complex_glorot("layer0.weight", 5, 7, &mut rng);
        store.add_real_glorot("layer0.bias", 1, 7, &mut rng);

        let dir = std::env::temp_dir().join("nitho_param_test");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("params.bin");
        store.save(&path).expect("save parameters");
        let loaded = ParamStore::load(&path).expect("load parameters");
        assert_eq!(loaded.len(), store.len());
        for ((_, n1, v1), (_, n2, v2)) in store.iter().zip(loaded.iter()) {
            assert_eq!(n1, n2);
            assert_eq!(v1, v2);
        }
        std::fs::remove_file(&path).ok();
    }

    /// A malformed header must be rejected by arithmetic, not by attempting
    /// the absurd allocation it requests.
    #[test]
    fn load_rejects_oversized_size_fields() {
        let dir = std::env::temp_dir().join("nitho_param_test_sizes");
        std::fs::create_dir_all(&dir).expect("create temp dir");

        let entry_count_lies = {
            let mut bytes = b"NITHOPRM".to_vec();
            bytes.extend_from_slice(&u64::MAX.to_le_bytes());
            bytes
        };
        let name_len_lies = {
            let mut bytes = b"NITHOPRM".to_vec();
            bytes.extend_from_slice(&1u64.to_le_bytes());
            bytes.extend_from_slice(&(1u64 << 60).to_le_bytes());
            bytes.extend_from_slice(b"w");
            bytes
        };
        let shape_lies = {
            let mut bytes = b"NITHOPRM".to_vec();
            bytes.extend_from_slice(&1u64.to_le_bytes());
            bytes.extend_from_slice(&1u64.to_le_bytes());
            bytes.extend_from_slice(b"w");
            // rows * cols overflows usize; rows alone dwarfs the file.
            bytes.extend_from_slice(&(u64::MAX / 2).to_le_bytes());
            bytes.extend_from_slice(&3u64.to_le_bytes());
            bytes
        };
        let byte_count_overflows = {
            let mut bytes = b"NITHOPRM".to_vec();
            bytes.extend_from_slice(&1u64.to_le_bytes());
            bytes.extend_from_slice(&1u64.to_le_bytes());
            bytes.extend_from_slice(b"w");
            // rows * cols fits in a u64, but *16 bytes wraps: must be caught
            // by checked arithmetic, not a debug overflow panic.
            bytes.extend_from_slice(&(1u64 << 61).to_le_bytes());
            bytes.extend_from_slice(&2u64.to_le_bytes());
            bytes
        };
        let truncated_data = {
            let mut bytes = b"NITHOPRM".to_vec();
            bytes.extend_from_slice(&1u64.to_le_bytes());
            bytes.extend_from_slice(&1u64.to_le_bytes());
            bytes.extend_from_slice(b"w");
            bytes.extend_from_slice(&1000u64.to_le_bytes());
            bytes.extend_from_slice(&1000u64.to_le_bytes());
            bytes.extend_from_slice(&[0u8; 32]); // far short of 1000*1000*16
            bytes
        };
        for (label, bytes) in [
            ("entry count", entry_count_lies),
            ("name length", name_len_lies),
            ("shape overflow", shape_lies),
            ("byte count overflow", byte_count_overflows),
            ("truncated data", truncated_data),
        ] {
            let path = dir.join("malformed.bin");
            std::fs::write(&path, &bytes).expect("write file");
            let err = ParamStore::load(&path).expect_err(label);
            assert_eq!(
                err.kind(),
                std::io::ErrorKind::InvalidData,
                "{label}: {err}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_bad_header() {
        let dir = std::env::temp_dir().join("nitho_param_test_bad");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("bad.bin");
        std::fs::write(&path, b"NOTAPARM").expect("write file");
        assert!(ParamStore::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
