//! Central-difference gradient checking.
//!
//! Complex autodiff is easy to get subtly wrong (a missing conjugate is
//! invisible on real-valued test cases), so every op in this crate and every
//! model in downstream crates is validated against numeric derivatives of the
//! real *and* imaginary coordinates of every input element.

use litho_math::{Complex64, ComplexMatrix};

use crate::tape::{NodeId, Tape};

/// Checks the analytic gradients of `build` against central differences.
///
/// `build` receives a fresh tape plus one gradient-carrying leaf per entry of
/// `inputs` and must return a scalar (`1 × 1`) loss node whose value is real.
/// For every real and imaginary component of every input element the loss is
/// re-evaluated at `±eps` and the numeric derivative is compared with the
/// analytic one.
///
/// # Errors
///
/// Returns a description of the first mismatch exceeding
/// `tol · (1 + |numeric|)`.
///
/// # Panics
///
/// Panics if `build` returns a non-scalar node.
pub fn check_gradients<F>(
    inputs: &[ComplexMatrix],
    build: F,
    eps: f64,
    tol: f64,
) -> Result<(), String>
where
    F: Fn(&mut Tape, &[NodeId]) -> NodeId,
{
    // Analytic pass.
    let mut tape = Tape::new();
    let ids: Vec<NodeId> = inputs.iter().map(|m| tape.leaf(m.clone(), true)).collect();
    let loss = build(&mut tape, &ids);
    tape.backward(loss);
    let analytic: Vec<ComplexMatrix> = ids
        .iter()
        .map(|&id| {
            tape.grad(id).cloned().unwrap_or_else(|| {
                ComplexMatrix::zeros(tape.value(id).rows(), tape.value(id).cols())
            })
        })
        .collect();

    let eval = |perturbed: &[ComplexMatrix]| -> f64 {
        let mut tape = Tape::new();
        let ids: Vec<NodeId> = perturbed
            .iter()
            .map(|m| tape.leaf(m.clone(), false))
            .collect();
        let loss = build(&mut tape, &ids);
        tape.value(loss)[(0, 0)].re
    };

    for (input_idx, input) in inputs.iter().enumerate() {
        for i in 0..input.rows() {
            for j in 0..input.cols() {
                for (component, delta) in [
                    ("re", Complex64::new(eps, 0.0)),
                    ("im", Complex64::new(0.0, eps)),
                ] {
                    let mut plus = inputs.to_vec();
                    plus[input_idx][(i, j)] += delta;
                    let mut minus = inputs.to_vec();
                    minus[input_idx][(i, j)] -= delta;
                    let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
                    let analytic_value = if component == "re" {
                        analytic[input_idx][(i, j)].re
                    } else {
                        analytic[input_idx][(i, j)].im
                    };
                    let err = (numeric - analytic_value).abs();
                    if err > tol * (1.0 + numeric.abs()) {
                        return Err(format!(
                            "gradient mismatch for input {input_idx} element ({i},{j}) {component}: \
                             analytic {analytic_value:.8e} vs numeric {numeric:.8e} (err {err:.3e})"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::ConvSpec;
    use litho_math::{DeterministicRng, RealMatrix};

    fn random(rows: usize, cols: usize, seed: u64) -> ComplexMatrix {
        let mut rng = DeterministicRng::new(seed);
        ComplexMatrix::from_fn(rows, cols, |_, _| rng.normal_complex(0.0, 1.0))
    }

    #[test]
    fn gradcheck_elementwise_chain() {
        let x = random(3, 3, 1);
        let w = random(3, 3, 2);
        check_gradients(
            &[x, w],
            |tape, ids| {
                let p = tape.mul(ids[0], ids[1]);
                let c = tape.crelu(p);
                let s = tape.abs_sq(c);
                tape.mean_real(s)
            },
            1e-5,
            1e-5,
        )
        .expect("gradients must match");
    }

    #[test]
    fn gradcheck_matmul_bias_chain() {
        let x = random(4, 3, 3);
        let w = random(3, 2, 4);
        let b = random(1, 2, 5);
        check_gradients(
            &[x, w, b],
            |tape, ids| {
                let h = tape.matmul(ids[0], ids[1]);
                let hb = tape.add_bias_row(h, ids[2]);
                let a = tape.crelu(hb);
                let s = tape.abs_sq(a);
                tape.sum_real(s)
            },
            1e-5,
            1e-5,
        )
        .expect("gradients must match");
    }

    #[test]
    fn gradcheck_fft_intensity_chain() {
        // The heart of the SOCS forward model: K ⊙ spectrum → ifft → |·|² → MSE.
        let kernel = random(4, 4, 6);
        let spectrum = random(4, 4, 7);
        let target = RealMatrix::from_fn(8, 8, |i, j| ((i + j) % 3) as f64 * 0.1);
        check_gradients(
            &[kernel, spectrum],
            move |tape, ids| {
                let prod = tape.mul(ids[0], ids[1]);
                let padded = tape.center_pad(prod, 8, 8);
                let unshifted = tape.ifftshift(padded);
                let field = tape.ifft2(unshifted);
                let intensity = tape.abs_sq(field);
                tape.mse_loss(intensity, &target)
            },
            1e-5,
            1e-4,
        )
        .expect("gradients must match");
    }

    #[test]
    fn gradcheck_fft_forward_and_crop() {
        let x = random(6, 6, 8);
        check_gradients(
            &[x],
            |tape, ids| {
                let f = tape.fft2(ids[0]);
                let shifted = tape.fftshift(f);
                let cropped = tape.center_crop(shifted, 3, 3);
                let s = tape.abs_sq(cropped);
                tape.mean_real(s)
            },
            1e-5,
            1e-4,
        )
        .expect("gradients must match");
    }

    #[test]
    fn gradcheck_column_scale_conj() {
        let x = random(6, 2, 9);
        check_gradients(
            &[x],
            |tape, ids| {
                let k = tape.column_as_matrix(ids[0], 1, 2, 3);
                let scaled = tape.scale(k, Complex64::new(0.3, -0.8));
                let c = tape.conj(scaled);
                let s = tape.abs_sq(c);
                tape.sum_real(s)
            },
            1e-5,
            1e-5,
        )
        .expect("gradients must match");
    }

    #[test]
    fn gradcheck_conv2d() {
        let spec = ConvSpec {
            in_channels: 2,
            out_channels: 2,
            kernel_h: 3,
            kernel_w: 3,
            height: 4,
            width: 4,
        };
        let x = random(8, 4, 10);
        let w = random(2 * 2 * 3, 3, 11);
        let b = random(2, 1, 12);
        let target = RealMatrix::from_fn(8, 4, |i, j| 0.05 * (i as f64) - 0.02 * (j as f64));
        check_gradients(
            &[x, w, b],
            move |tape, ids| {
                let y = tape.conv2d(ids[0], ids[1], ids[2], spec);
                let r = tape.relu(y);
                tape.mse_loss(r, &target)
            },
            1e-5,
            1e-4,
        )
        .expect("gradients must match");
    }

    #[test]
    fn gradcheck_real_network_ops() {
        let x = random(3, 4, 13);
        let w = random(4, 2, 14);
        check_gradients(
            &[x, w],
            |tape, ids| {
                let h = tape.matmul(ids[0], ids[1]);
                let r = tape.relu(h);
                let s = tape.sigmoid(r);
                let sc = tape.scale_re(s, 2.5);
                let n = tape.neg(sc);
                let sum = tape.sum_real(n);
                tape.scale_re(sum, -1.0)
            },
            1e-5,
            1e-5,
        )
        .expect("gradients must match");
    }

    #[test]
    fn gradcheck_detects_wrong_gradient() {
        // Sanity: a deliberately wrong "loss" (non-differentiated detour) must
        // be caught. We construct a mismatch by comparing analytic gradients
        // of x·x against numeric gradients of x·x + x (different builds).
        let x = random(2, 2, 15);
        let toggle = std::cell::Cell::new(false);
        let result = check_gradients(
            &[x],
            move |tape, ids| {
                let base = tape.mul(ids[0], ids[0]);
                let value = if toggle.replace(true) {
                    // Subsequent (numeric) evaluations see a different function.
                    tape.add(base, ids[0])
                } else {
                    base
                };
                let s = tape.abs_sq(value);
                tape.sum_real(s)
            },
            1e-5,
            1e-6,
        );
        assert!(result.is_err(), "mismatch should be detected");
    }
}
