//! Process-window metrology: critical dimension (CD), edge-placement error
//! (EPE) and process-variation band (PVB).
//!
//! These are the quantities fabs actually gate on. All three are defined on
//! top of one primitive: the **sub-pixel super-level set** of a 1-D intensity
//! profile. The profile samples are interpreted as a piecewise-linear
//! function of the pixel coordinate; the segments where it meets or exceeds
//! the development threshold are found by linear interpolation at each
//! threshold crossing, so edge positions (and therefore CDs and EPEs) resolve
//! to a fraction of a pixel.
//!
//! * **CD** — the width of the widest printed segment along a cutline.
//!   Because the super-level set at a higher threshold is a subset of the one
//!   at a lower threshold, both the total printed length and the widest
//!   segment are monotone non-increasing in the threshold.
//! * **EPE** — for every edge (segment endpoint) of a reference image's
//!   cutline contour, the distance to the nearest edge of the prediction's
//!   contour on the same cutline.
//! * **PVB** — the set of pixels printed under *some but not all* conditions
//!   of a resist stack; its area is the standard scalar summary of
//!   process-window robustness.

use litho_math::RealMatrix;

/// A metrology cutline through an image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cutline {
    /// A horizontal cut along the given row.
    Row(usize),
    /// A vertical cut along the given column.
    Col(usize),
}

impl Cutline {
    /// The intensity profile of an image along this cutline.
    ///
    /// # Panics
    ///
    /// Panics if the cutline lies outside the image.
    pub fn profile(&self, image: &RealMatrix) -> Vec<f64> {
        match *self {
            Cutline::Row(row) => {
                assert!(row < image.rows(), "cutline row {row} outside the image");
                (0..image.cols()).map(|j| image[(row, j)]).collect()
            }
            Cutline::Col(col) => {
                assert!(col < image.cols(), "cutline column {col} outside the image");
                (0..image.rows()).map(|i| image[(i, col)]).collect()
            }
        }
    }

    /// The two center cutlines of an image (the default CD measurement
    /// sites).
    pub fn center(rows: usize, cols: usize) -> [Cutline; 2] {
        [Cutline::Row(rows / 2), Cutline::Col(cols / 2)]
    }
}

/// Segments (in sub-pixel coordinates) where the piecewise-linear
/// interpolation of `profile` meets or exceeds `threshold`, as half-open
/// `(start, end)` pairs with `start < end` ordered left to right.
///
/// Degenerate touch points (a single sample equal to the threshold with both
/// neighbors below) produce zero-width segments and are dropped.
///
/// # Panics
///
/// Panics if the profile is empty or contains non-finite values.
pub fn threshold_segments(profile: &[f64], threshold: f64) -> Vec<(f64, f64)> {
    assert!(!profile.is_empty(), "profile cannot be empty");
    assert!(
        profile.iter().all(|v| v.is_finite()),
        "profile must be finite"
    );
    let above = |v: f64| v >= threshold;
    let mut segments = Vec::new();
    let mut start = above(profile[0]).then_some(0.0);
    for i in 0..profile.len().saturating_sub(1) {
        let (a, b) = (profile[i], profile[i + 1]);
        if above(a) == above(b) {
            continue;
        }
        // Exactly one crossing on this interval; linear interpolation puts it
        // at the sub-pixel coordinate x.
        let x = i as f64 + (threshold - a) / (b - a);
        if above(a) {
            let s = start.take().expect("open segment at a falling edge");
            if x > s {
                segments.push((s, x));
            }
        } else {
            start = Some(x);
        }
    }
    if let Some(s) = start {
        let end = (profile.len() - 1) as f64;
        if end > s {
            segments.push((s, end));
        }
    }
    segments
}

/// Total printed length along a profile (sum of segment widths, in pixels).
pub fn printed_length(profile: &[f64], threshold: f64) -> f64 {
    threshold_segments(profile, threshold)
        .iter()
        .map(|(s, e)| e - s)
        .sum()
}

/// Critical dimension along a cutline: the width (in pixels) of the widest
/// segment at or above the threshold, or `None` when nothing prints on the
/// cutline.
///
/// # Panics
///
/// Panics if the cutline lies outside the image.
pub fn cd_px(image: &RealMatrix, cutline: Cutline, threshold: f64) -> Option<f64> {
    threshold_segments(&cutline.profile(image), threshold)
        .iter()
        .map(|(s, e)| e - s)
        .fold(None, |acc: Option<f64>, w| {
            Some(acc.map_or(w, |best| best.max(w)))
        })
}

/// Edge-placement-error statistics over a set of cutlines.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpeStats {
    /// Mean absolute edge displacement in pixels.
    pub mean_abs_px: f64,
    /// Largest absolute edge displacement in pixels.
    pub max_abs_px: f64,
    /// Number of reference edges that found a counterpart.
    pub matched_edges: usize,
    /// Number of reference edges with no predicted edge on their cutline.
    pub unmatched_edges: usize,
}

/// Edge positions (sub-pixel) of a profile's threshold contour.
fn edge_positions(profile: &[f64], threshold: f64) -> Vec<f64> {
    let mut edges = Vec::new();
    for (s, e) in threshold_segments(profile, threshold) {
        edges.push(s);
        edges.push(e);
    }
    edges
}

/// Edge-placement error of `prediction` against `reference` along the given
/// cutlines: every reference edge is matched to the nearest predicted edge on
/// the same cutline.
///
/// Identical images yield exactly zero (`EPE(x, x) == 0`). Reference edges on
/// cutlines where the prediction prints nothing are counted as unmatched and
/// excluded from the displacement statistics.
///
/// # Panics
///
/// Panics if the image shapes differ or a cutline lies outside the images.
pub fn epe(
    reference: &RealMatrix,
    prediction: &RealMatrix,
    cutlines: &[Cutline],
    threshold: f64,
) -> EpeStats {
    epe_with_thresholds(reference, threshold, prediction, threshold, cutlines)
}

/// [`epe`] with independent development thresholds for the two images — the
/// process-window case, where a dose change shifts the prediction's
/// effective threshold while the reference contour stays at nominal dose.
///
/// # Panics
///
/// Panics if the image shapes differ or a cutline lies outside the images.
pub fn epe_with_thresholds(
    reference: &RealMatrix,
    reference_threshold: f64,
    prediction: &RealMatrix,
    prediction_threshold: f64,
    cutlines: &[Cutline],
) -> EpeStats {
    assert_eq!(
        reference.shape(),
        prediction.shape(),
        "shape mismatch in epe"
    );
    let mut stats = EpeStats::default();
    let mut sum_abs = 0.0;
    for &cutline in cutlines {
        let ref_edges = edge_positions(&cutline.profile(reference), reference_threshold);
        let pred_edges = edge_positions(&cutline.profile(prediction), prediction_threshold);
        for re in ref_edges {
            let nearest = pred_edges
                .iter()
                .map(|pe| (pe - re).abs())
                .fold(None, |acc: Option<f64>, d| {
                    Some(acc.map_or(d, |best| best.min(d)))
                });
            match nearest {
                Some(d) => {
                    stats.matched_edges += 1;
                    sum_abs += d;
                    stats.max_abs_px = stats.max_abs_px.max(d);
                }
                None => stats.unmatched_edges += 1,
            }
        }
    }
    if stats.matched_edges > 0 {
        stats.mean_abs_px = sum_abs / stats.matched_edges as f64;
    }
    stats
}

/// Summary of a process-variation band.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PvbSummary {
    /// Number of pixels printed under at least one condition.
    pub union_px: f64,
    /// Number of pixels printed under every condition.
    pub intersection_px: f64,
    /// Band area: pixels printed under some but not all conditions.
    pub area_px: f64,
    /// Band area as a fraction of the image.
    pub area_fraction: f64,
}

/// Streaming (one-plane-at-a-time) process-variation-band reduction.
///
/// Per pixel, "printed under at least one condition" and "printed under every
/// condition" are the monotone folds `any |= printed` and `all &= printed`:
/// commutative, associative and idempotent, so the result is independent of
/// the order conditions arrive in and each resist plane can be folded in and
/// **dropped** the moment it is produced. The accumulator holds two bit-packed
/// planes (1 bit per pixel each, 1/64 the footprint of one `f64` plane), so a
/// dense focus × dose sweep costs O(1) planes of memory instead of
/// O(conditions).
///
/// [`pvb_summary`] and [`pvb_band`] are reimplemented on top of this type, so
/// there is exactly one PVB reduction code path.
///
/// ```
/// use litho_math::RealMatrix;
/// use litho_metrics::metrology::StreamingPvb;
///
/// let mut fold = StreamingPvb::new();
/// for aerial in [RealMatrix::zeros(4, 4), RealMatrix::from_fn(4, 4, |_, _| 1.0)] {
///     let printed = fold.push_thresholded(&aerial, 0.5);
///     assert!(printed == 0.0 || printed == 16.0);
/// }
/// let (summary, band) = fold.finish(true);
/// assert_eq!(summary.area_px, 16.0);
/// assert_eq!(band.expect("band requested").sum(), 16.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StreamingPvb {
    shape: Option<(usize, usize)>,
    conditions: usize,
    union: Vec<u64>,
    intersection: Vec<u64>,
}

impl StreamingPvb {
    /// An empty accumulator; the pixel shape is fixed by the first push.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resist planes folded in so far.
    pub fn conditions(&self) -> usize {
        self.conditions
    }

    /// Folds one binary resist plane into the band (0.5 cut, matching the
    /// other resist metrics). Returns the plane's printed-pixel count so the
    /// caller gets its per-condition report without a second pass.
    ///
    /// # Panics
    ///
    /// Panics if the plane's shape differs from the first pushed plane.
    pub fn push(&mut self, resist: &RealMatrix) -> f64 {
        self.push_thresholded(resist, 0.5)
    }

    /// Folds an aerial plane at an explicit development `threshold`, fusing
    /// the binarization into the fold so no intermediate resist plane is ever
    /// materialized. `push_thresholded(a, t)` is exactly
    /// `push(&a.threshold(t))`: both use the `value >= threshold` cut, and
    /// the returned printed count equals `a.threshold(t).sum()` bit for bit
    /// (a sum of exact `1.0`s is an integer below 2^53).
    ///
    /// # Panics
    ///
    /// Panics if the plane's shape differs from the first pushed plane.
    pub fn push_thresholded(&mut self, aerial: &RealMatrix, threshold: f64) -> f64 {
        let shape = aerial.shape();
        match self.shape {
            None => {
                let words = (shape.0 * shape.1).div_ceil(64);
                self.shape = Some(shape);
                self.union = vec![0u64; words];
                self.intersection = vec![u64::MAX; words];
            }
            Some(expected) => {
                assert_eq!(shape, expected, "shape mismatch in PVB stack");
            }
        }
        self.conditions += 1;
        let mut printed = 0u64;
        for (chunk, (any, all)) in aerial
            .as_slice()
            .chunks(64)
            .zip(self.union.iter_mut().zip(self.intersection.iter_mut()))
        {
            let mut bits = 0u64;
            for (bit, &value) in chunk.iter().enumerate() {
                bits |= u64::from(value >= threshold) << bit;
            }
            printed += u64::from(bits.count_ones());
            *any |= bits;
            // Trailing bits of the last word stay set in `intersection`, but
            // they are masked off by `union` (never set there) at finish.
            *all &= bits | !mask_for(chunk.len());
        }
        printed as f64
    }

    /// Completes the fold: the scalar [`PvbSummary`] plus, when `want_band`,
    /// the band plane itself (1 where conditions disagree).
    ///
    /// # Panics
    ///
    /// Panics if nothing was pushed.
    pub fn finish(self, want_band: bool) -> (PvbSummary, Option<RealMatrix>) {
        assert!(self.conditions > 0, "PVB needs at least one resist image");
        let (rows, cols) = self.shape.expect("shape fixed by the first push");
        let total = rows * cols;
        let mut union = 0usize;
        let mut intersection = 0usize;
        for (&any, &all) in self.union.iter().zip(&self.intersection) {
            union += (any.count_ones()) as usize;
            intersection += (any & all).count_ones() as usize;
        }
        let area = (union - intersection) as f64;
        let summary = PvbSummary {
            union_px: union as f64,
            intersection_px: intersection as f64,
            area_px: area,
            area_fraction: if total > 0 { area / total as f64 } else { 0.0 },
        };
        let band = want_band.then(|| {
            RealMatrix::from_fn(rows, cols, |i, j| {
                let idx = i * cols + j;
                let any = self.union[idx / 64] >> (idx % 64) & 1 == 1;
                let all = self.intersection[idx / 64] >> (idx % 64) & 1 == 1;
                if any && !all {
                    1.0
                } else {
                    0.0
                }
            })
        });
        (summary, band)
    }
}

/// All-ones mask for the low `bits` bits of a word (`bits <= 64`).
fn mask_for(bits: usize) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// The process-variation band of a stack of binary resist images (one per
/// process condition, all the same shape): 1 where the condition stack
/// disagrees (printed somewhere, not everywhere), 0 elsewhere. Images are
/// treated as binary with a 0.5 cut, like the other resist metrics.
///
/// Thin wrapper over [`StreamingPvb`]; callers that produce conditions one at
/// a time should fold directly instead of materializing a stack.
///
/// # Panics
///
/// Panics if the stack is empty or the shapes differ.
pub fn pvb_band(stack: &[RealMatrix]) -> RealMatrix {
    let mut fold = StreamingPvb::new();
    for image in stack {
        fold.push(image);
    }
    fold.finish(true).1.expect("band was requested")
}

/// Computes the [`PvbSummary`] of a resist stack (see [`pvb_band`]).
///
/// A single-condition stack always has zero band area.
///
/// # Panics
///
/// Panics if the stack is empty or the shapes differ.
pub fn pvb_summary(stack: &[RealMatrix]) -> PvbSummary {
    let mut fold = StreamingPvb::new();
    for image in stack {
        fold.push(image);
    }
    fold.finish(false).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A trapezoidal line profile: ramps 0 → 1 → 0 around a plateau.
    fn trapezoid(n: usize, left: f64, right: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = i as f64;
                if x < left - 2.0 || x > right + 2.0 {
                    0.0
                } else if x < left {
                    (x - (left - 2.0)) / 2.0
                } else if x <= right {
                    1.0
                } else {
                    ((right + 2.0) - x) / 2.0
                }
            })
            .collect()
    }

    #[test]
    fn segments_interpolate_subpixel_edges() {
        // Profile crosses 0.5 exactly halfway between samples 1-2 and 4-5.
        let profile = [0.0, 0.0, 1.0, 1.0, 1.0, 0.0];
        let segments = threshold_segments(&profile, 0.5);
        assert_eq!(segments.len(), 1);
        let (s, e) = segments[0];
        assert!((s - 1.5).abs() < 1e-12, "start {s}");
        assert!((e - 4.5).abs() < 1e-12, "end {e}");
        assert!((printed_length(&profile, 0.5) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn segments_handle_boundary_plateaus() {
        // Profile already above threshold at both ends.
        let profile = [1.0, 0.0, 1.0];
        let segments = threshold_segments(&profile, 0.5);
        assert_eq!(segments.len(), 2);
        assert!((segments[0].0 - 0.0).abs() < 1e-12);
        assert!((segments[0].1 - 0.5).abs() < 1e-12);
        assert!((segments[1].0 - 1.5).abs() < 1e-12);
        assert!((segments[1].1 - 2.0).abs() < 1e-12);
        // Fully-below and fully-above profiles.
        assert!(threshold_segments(&[0.1, 0.2], 0.5).is_empty());
        assert_eq!(threshold_segments(&[0.9, 0.8], 0.5), vec![(0.0, 1.0)]);
    }

    #[test]
    fn cd_measures_the_widest_feature() {
        let n = 32;
        let profile = trapezoid(n, 10.0, 20.0);
        let image = RealMatrix::from_fn(4, n, |_, j| profile[j]);
        // At threshold 0.5 the ramps cross one pixel outside the plateau.
        let cd = cd_px(&image, Cutline::Row(1), 0.5).expect("feature prints");
        assert!((cd - 12.0).abs() < 1e-9, "cd {cd}");
        // Higher threshold → narrower line.
        let tight = cd_px(&image, Cutline::Row(1), 0.9).expect("feature prints");
        assert!(tight < cd);
        // A dark cutline measures nothing.
        let dark = RealMatrix::zeros(4, 4);
        assert_eq!(cd_px(&dark, Cutline::Col(2), 0.5), None);
    }

    #[test]
    fn cutline_profiles_and_centers() {
        let image = RealMatrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        assert_eq!(Cutline::Row(1).profile(&image), vec![4.0, 5.0, 6.0, 7.0]);
        assert_eq!(Cutline::Col(2).profile(&image), vec![2.0, 6.0, 10.0]);
        assert_eq!(Cutline::center(3, 4), [Cutline::Row(1), Cutline::Col(2)]);
    }

    #[test]
    #[should_panic(expected = "outside the image")]
    fn out_of_range_cutline_panics() {
        let _ = Cutline::Row(9).profile(&RealMatrix::zeros(4, 4));
    }

    #[test]
    fn epe_of_identical_images_is_zero() {
        let n = 32;
        let profile = trapezoid(n, 8.0, 18.0);
        let image = RealMatrix::from_fn(n, n, |_, j| profile[j]);
        let cutlines = Cutline::center(n, n);
        let stats = epe(&image, &image, &cutlines, 0.5);
        assert_eq!(stats.mean_abs_px, 0.0);
        assert_eq!(stats.max_abs_px, 0.0);
        assert!(stats.matched_edges > 0);
        assert_eq!(stats.unmatched_edges, 0);
    }

    #[test]
    fn epe_measures_a_known_shift() {
        let n = 32;
        let reference_profile = trapezoid(n, 10.0, 20.0);
        let shifted_profile = trapezoid(n, 11.0, 21.0);
        let reference = RealMatrix::from_fn(4, n, |_, j| reference_profile[j]);
        let shifted = RealMatrix::from_fn(4, n, |_, j| shifted_profile[j]);
        let stats = epe(&reference, &shifted, &[Cutline::Row(2)], 0.5);
        assert_eq!(stats.matched_edges, 2);
        assert!((stats.mean_abs_px - 1.0).abs() < 1e-9, "{stats:?}");
        assert!((stats.max_abs_px - 1.0).abs() < 1e-9);
    }

    #[test]
    fn epe_counts_unmatched_edges() {
        let n = 32;
        let profile = trapezoid(n, 10.0, 20.0);
        let reference = RealMatrix::from_fn(4, n, |_, j| profile[j]);
        let dark = RealMatrix::zeros(4, n);
        let stats = epe(&reference, &dark, &[Cutline::Row(2)], 0.5);
        assert_eq!(stats.matched_edges, 0);
        assert_eq!(stats.unmatched_edges, 2);
        assert_eq!(stats.mean_abs_px, 0.0);
    }

    #[test]
    fn pvb_band_flags_disagreement_only() {
        let a = RealMatrix::from_fn(4, 4, |_, j| if j < 2 { 1.0 } else { 0.0 });
        let b = RealMatrix::from_fn(4, 4, |_, j| if j < 3 { 1.0 } else { 0.0 });
        let band = pvb_band(&[a.clone(), b.clone()]);
        // Only column 2 differs.
        assert_eq!(band.sum(), 4.0);
        assert!(band.iter().all(|&v| v == 0.0 || v == 1.0));
        let summary = pvb_summary(&[a, b]);
        assert_eq!(summary.union_px, 12.0);
        assert_eq!(summary.intersection_px, 8.0);
        assert_eq!(summary.area_px, 4.0);
        assert!((summary.area_fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one resist image")]
    fn empty_pvb_stack_panics() {
        let _ = pvb_summary(&[]);
    }

    #[test]
    #[should_panic(expected = "at least one resist image")]
    fn empty_streaming_fold_panics() {
        let _ = StreamingPvb::new().finish(true);
    }

    #[test]
    #[should_panic(expected = "shape mismatch in PVB stack")]
    fn mismatched_streaming_shapes_panic() {
        let mut fold = StreamingPvb::new();
        fold.push(&RealMatrix::zeros(4, 4));
        fold.push(&RealMatrix::zeros(4, 5));
    }

    #[test]
    fn streaming_threshold_fuses_the_binarization() {
        let mut rng = litho_math::DeterministicRng::new(11);
        // 9x9 = 81 pixels: exercises the partial trailing bit-word.
        let aerials: Vec<RealMatrix> = (0..4)
            .map(|_| RealMatrix::from_fn(9, 9, |_, _| rng.uniform(0.0, 1.0)))
            .collect();
        let thresholds = [0.3, 0.5, 0.62, 0.9];

        let mut fold = StreamingPvb::new();
        let mut resist_stack = Vec::new();
        for (aerial, &t) in aerials.iter().zip(&thresholds) {
            let resist = aerial.threshold(t);
            assert_eq!(fold.push_thresholded(aerial, t), resist.sum());
            resist_stack.push(resist);
        }
        assert_eq!(fold.conditions(), 4);
        let expected_summary = pvb_summary(&resist_stack);
        let expected_band = pvb_band(&resist_stack);
        let (summary, band) = fold.finish(true);
        assert_eq!(summary, expected_summary);
        assert_eq!(band.expect("band").as_slice(), expected_band.as_slice());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_cd_monotone_nonincreasing_in_threshold(seed in 0u64..500, t1 in 0.2..0.5f64, dt in 0.0..0.4f64) {
            let mut rng = litho_math::DeterministicRng::new(seed);
            let image = RealMatrix::from_fn(8, 24, |_, _| rng.uniform(0.0, 1.0));
            let t2 = t1 + dt;
            for cutline in [Cutline::Row(3), Cutline::Col(11)] {
                let wide = cd_px(&image, cutline, t1);
                let tight = cd_px(&image, cutline, t2);
                // The super-level set shrinks, so the widest segment and the
                // printed length can only shrink (or vanish).
                match (wide, tight) {
                    (Some(w), Some(t)) => prop_assert!(t <= w + 1e-12),
                    (None, Some(_)) => prop_assert!(false, "feature appeared at a higher threshold"),
                    _ => {}
                }
                let profile = cutline.profile(&image);
                prop_assert!(printed_length(&profile, t2) <= printed_length(&profile, t1) + 1e-12);
            }
        }

        #[test]
        fn prop_epe_self_is_zero(seed in 0u64..200) {
            let mut rng = litho_math::DeterministicRng::new(seed);
            let image = RealMatrix::from_fn(12, 12, |_, _| rng.uniform(0.0, 1.0));
            let cutlines: Vec<Cutline> = (0..12).map(Cutline::Row).chain((0..12).map(Cutline::Col)).collect();
            let stats = epe(&image, &image, &cutlines, 0.45);
            prop_assert_eq!(stats.mean_abs_px, 0.0);
            prop_assert_eq!(stats.max_abs_px, 0.0);
            prop_assert_eq!(stats.unmatched_edges, 0);
        }

        #[test]
        fn prop_pvb_nonnegative_and_zero_for_single_stack(seed in 0u64..200, conditions in 1usize..5) {
            let mut rng = litho_math::DeterministicRng::new(seed);
            let stack: Vec<RealMatrix> = (0..conditions)
                .map(|_| RealMatrix::from_fn(6, 6, |_, _| rng.uniform(0.0, 1.0)).threshold(0.5))
                .collect();
            let summary = pvb_summary(&stack);
            prop_assert!(summary.area_px >= 0.0);
            prop_assert!(summary.area_fraction >= 0.0 && summary.area_fraction <= 1.0);
            prop_assert!(summary.intersection_px <= summary.union_px);
            // The band image and the scalar summary agree.
            prop_assert_eq!(pvb_band(&stack).sum(), summary.area_px);
            if conditions == 1 {
                prop_assert_eq!(summary.area_px, 0.0);
            }
        }

        #[test]
        fn prop_segments_partition_profile(seed in 0u64..200, t in 0.1..0.9f64) {
            let mut rng = litho_math::DeterministicRng::new(seed);
            let profile: Vec<f64> = (0..16).map(|_| rng.uniform(0.0, 1.0)).collect();
            let segments = threshold_segments(&profile, t);
            let span = (profile.len() - 1) as f64;
            let mut previous_end = 0.0;
            for (s, e) in &segments {
                prop_assert!(*s >= previous_end - 1e-12);
                prop_assert!(e > s);
                prop_assert!(*s >= 0.0 && *e <= span + 1e-12);
                previous_end = *e;
            }
            // Every sample at or above the threshold lies inside a segment.
            for (i, &v) in profile.iter().enumerate() {
                if v >= t {
                    let x = i as f64;
                    prop_assert!(segments.iter().any(|(s, e)| *s <= x && x <= *e));
                }
            }
        }
    }
}
