//! Image-quality and segmentation metrics used throughout the paper's
//! evaluation (Section II-B): MSE, PSNR and max error for aerial images,
//! mIOU and mPA for resist images — plus the process-window [`metrology`]
//! module (CD, EPE, PVB).

#![forbid(unsafe_code)]

pub mod metrology;

pub use metrology::{
    cd_px, epe, epe_with_thresholds, printed_length, pvb_band, pvb_summary, threshold_segments,
    Cutline, EpeStats, PvbSummary, StreamingPvb,
};

use litho_math::RealMatrix;

/// Mean squared error between an aerial image and its prediction (Eq. (5)).
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mse(reference: &RealMatrix, prediction: &RealMatrix) -> f64 {
    assert_eq!(
        reference.shape(),
        prediction.shape(),
        "shape mismatch in mse"
    );
    reference
        .zip_map(prediction, |a, b| (a - b) * (a - b))
        .mean()
}

/// Peak signal-to-noise ratio in decibels (Eq. (6)):
/// `PSNR = 10·log10(max(I)² / MSE)`.
///
/// Returns `f64::INFINITY` for identical images.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn psnr(reference: &RealMatrix, prediction: &RealMatrix) -> f64 {
    let err = mse(reference, prediction);
    if err == 0.0 {
        return f64::INFINITY;
    }
    let peak = reference.max();
    10.0 * (peak * peak / err).log10()
}

/// Maximum absolute error (Eq. (8)).
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn max_error(reference: &RealMatrix, prediction: &RealMatrix) -> f64 {
    assert_eq!(
        reference.shape(),
        prediction.shape(),
        "shape mismatch in max_error"
    );
    reference.zip_map(prediction, |a, b| (a - b).abs()).max()
}

/// Mean intersection-over-union over the two resist classes
/// (printed / unprinted), Eq. (7). Images are treated as binary with a 0.5
/// cut.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn miou(reference: &RealMatrix, prediction: &RealMatrix) -> f64 {
    let (stats0, stats1) = class_statistics(reference, prediction);
    let iou = |s: ClassStats| {
        if s.union == 0 {
            1.0
        } else {
            s.intersection as f64 / s.union as f64
        }
    };
    0.5 * (iou(stats0) + iou(stats1))
}

/// Mean pixel accuracy over the two resist classes, Eq. (7): for each class,
/// the fraction of its ground-truth pixels predicted correctly, averaged.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mpa(reference: &RealMatrix, prediction: &RealMatrix) -> f64 {
    let (stats0, stats1) = class_statistics(reference, prediction);
    let acc = |s: ClassStats| {
        if s.reference == 0 {
            1.0
        } else {
            s.intersection as f64 / s.reference as f64
        }
    };
    0.5 * (acc(stats0) + acc(stats1))
}

#[derive(Debug, Clone, Copy, Default)]
struct ClassStats {
    intersection: usize,
    union: usize,
    reference: usize,
}

fn class_statistics(reference: &RealMatrix, prediction: &RealMatrix) -> (ClassStats, ClassStats) {
    assert_eq!(
        reference.shape(),
        prediction.shape(),
        "shape mismatch in class metric"
    );
    let mut stats = [ClassStats::default(), ClassStats::default()];
    for (&r, &p) in reference.iter().zip(prediction.iter()) {
        let r_class = usize::from(r >= 0.5);
        let p_class = usize::from(p >= 0.5);
        for (class, s) in stats.iter_mut().enumerate() {
            let in_r = r_class == class;
            let in_p = p_class == class;
            if in_r {
                s.reference += 1;
            }
            if in_r && in_p {
                s.intersection += 1;
            }
            if in_r || in_p {
                s.union += 1;
            }
        }
    }
    (stats[0], stats[1])
}

/// Aggregated aerial-image metrics over a set of image pairs, reported the
/// way the paper's Table III rows are (MSE ×10⁻⁵, ME ×10⁻², PSNR in dB).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AerialMetrics {
    /// Mean of per-image MSE.
    pub mse: f64,
    /// Mean of per-image max error.
    pub max_error: f64,
    /// Mean of per-image PSNR in dB.
    pub psnr_db: f64,
}

impl AerialMetrics {
    /// Evaluates a set of `(reference, prediction)` aerial-image pairs.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty or any pair has mismatched shapes.
    pub fn evaluate<'a>(pairs: impl IntoIterator<Item = (&'a RealMatrix, &'a RealMatrix)>) -> Self {
        let mut count = 0usize;
        let mut acc = AerialMetrics::default();
        for (reference, prediction) in pairs {
            acc.mse += mse(reference, prediction);
            acc.max_error += max_error(reference, prediction);
            acc.psnr_db += psnr(reference, prediction);
            count += 1;
        }
        assert!(count > 0, "cannot evaluate an empty set of image pairs");
        AerialMetrics {
            mse: acc.mse / count as f64,
            max_error: acc.max_error / count as f64,
            psnr_db: acc.psnr_db / count as f64,
        }
    }

    /// MSE scaled by 10⁵, matching the paper's Table III column heading.
    pub fn mse_e5(&self) -> f64 {
        self.mse * 1e5
    }

    /// Max error scaled by 10², matching the paper's Table III column heading.
    pub fn max_error_e2(&self) -> f64 {
        self.max_error * 1e2
    }
}

/// Aggregated resist-image metrics over a set of image pairs (percentages,
/// as in Tables III and IV).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResistMetrics {
    /// Mean pixel accuracy in percent.
    pub mpa_percent: f64,
    /// Mean intersection-over-union in percent.
    pub miou_percent: f64,
}

impl ResistMetrics {
    /// Evaluates a set of `(reference, prediction)` resist-image pairs.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty or any pair has mismatched shapes.
    pub fn evaluate<'a>(pairs: impl IntoIterator<Item = (&'a RealMatrix, &'a RealMatrix)>) -> Self {
        let mut count = 0usize;
        let mut sum_mpa = 0.0;
        let mut sum_miou = 0.0;
        for (reference, prediction) in pairs {
            sum_mpa += mpa(reference, prediction);
            sum_miou += miou(reference, prediction);
            count += 1;
        }
        assert!(count > 0, "cannot evaluate an empty set of image pairs");
        ResistMetrics {
            mpa_percent: 100.0 * sum_mpa / count as f64,
            miou_percent: 100.0 * sum_miou / count as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn checker(n: usize) -> RealMatrix {
        RealMatrix::from_fn(n, n, |i, j| ((i + j) % 2) as f64)
    }

    #[test]
    fn mse_of_identical_images_is_zero() {
        let a = checker(8);
        assert_eq!(mse(&a, &a), 0.0);
        assert_eq!(max_error(&a, &a), 0.0);
        assert_eq!(psnr(&a, &a), f64::INFINITY);
    }

    #[test]
    fn mse_and_max_error_of_known_difference() {
        let a = RealMatrix::from_vec(1, 4, vec![0.0, 1.0, 0.5, 0.25]);
        let b = RealMatrix::from_vec(1, 4, vec![0.1, 0.9, 0.5, 0.45]);
        assert!((mse(&a, &b) - (0.01 + 0.01 + 0.0 + 0.04) / 4.0).abs() < 1e-12);
        assert!((max_error(&a, &b) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let clean = checker(16);
        let slightly_off = clean.map(|v| v + 0.01);
        let very_off = clean.map(|v| v + 0.2);
        assert!(psnr(&clean, &slightly_off) > psnr(&clean, &very_off));
        // 0.01 uniform error on a peak-1 image: PSNR = 40 dB.
        assert!((psnr(&clean, &slightly_off) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn miou_and_mpa_perfect_prediction() {
        let z = checker(8);
        assert_eq!(miou(&z, &z), 1.0);
        assert_eq!(mpa(&z, &z), 1.0);
    }

    #[test]
    fn miou_and_mpa_complete_mismatch() {
        let z = checker(8);
        let inverted = z.map(|v| 1.0 - v);
        assert_eq!(miou(&z, &inverted), 0.0);
        assert_eq!(mpa(&z, &inverted), 0.0);
    }

    #[test]
    fn miou_known_partial_overlap() {
        // Reference: left half printed. Prediction: left three quarters printed.
        let reference = RealMatrix::from_fn(4, 4, |_, j| if j < 2 { 1.0 } else { 0.0 });
        let prediction = RealMatrix::from_fn(4, 4, |_, j| if j < 3 { 1.0 } else { 0.0 });
        // Class 1: intersection 8, union 12 → 2/3. Class 0: intersection 4, union 8 → 1/2.
        assert!((miou(&reference, &prediction) - (2.0 / 3.0 + 0.5) / 2.0).abs() < 1e-12);
        // Class 1: 8/8 correct → 1. Class 0: 4/8 → 0.5.
        assert!((mpa(&reference, &prediction) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_class_counts_as_perfect() {
        // All-printed reference and prediction: class 0 is absent from both.
        let ones = RealMatrix::filled(4, 4, 1.0);
        assert_eq!(miou(&ones, &ones), 1.0);
        assert_eq!(mpa(&ones, &ones), 1.0);
    }

    #[test]
    fn aggregate_aerial_metrics() {
        let reference = checker(8);
        let pred_a = reference.map(|v| v + 0.1);
        let pred_b = reference.clone();
        let metrics = AerialMetrics::evaluate([(&reference, &pred_a), (&reference, &pred_b)]);
        assert!((metrics.mse - 0.005).abs() < 1e-12);
        assert!((metrics.max_error - 0.05).abs() < 1e-12);
        assert!(metrics.psnr_db.is_infinite());
        assert!((metrics.mse_e5() - 500.0).abs() < 1e-9);
        assert!((metrics.max_error_e2() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_resist_metrics() {
        let reference = checker(8);
        let inverted = reference.map(|v| 1.0 - v);
        let metrics = ResistMetrics::evaluate([(&reference, &reference), (&reference, &inverted)]);
        assert!((metrics.mpa_percent - 50.0).abs() < 1e-12);
        assert!((metrics.miou_percent - 50.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn empty_aggregate_panics() {
        let _ = AerialMetrics::evaluate(std::iter::empty());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_shapes_panic() {
        let _ = mse(&RealMatrix::zeros(2, 2), &RealMatrix::zeros(3, 3));
    }

    proptest! {
        #[test]
        fn prop_metrics_bounded(seed in 0u64..200) {
            let mut rng = litho_math::DeterministicRng::new(seed);
            let reference = RealMatrix::from_fn(6, 6, |_, _| rng.uniform(0.0, 1.0)).threshold(0.5);
            let prediction = RealMatrix::from_fn(6, 6, |_, _| rng.uniform(0.0, 1.0)).threshold(0.5);
            let iou = miou(&reference, &prediction);
            let pa = mpa(&reference, &prediction);
            prop_assert!((0.0..=1.0).contains(&iou));
            prop_assert!((0.0..=1.0).contains(&pa));
            // IoU is never larger than pixel accuracy for the same pair.
            prop_assert!(iou <= pa + 1e-12);
            prop_assert!(mse(&reference, &prediction) >= 0.0);
            prop_assert!(max_error(&reference, &prediction) <= 1.0);
        }

        #[test]
        fn prop_mse_symmetry(seed in 0u64..100) {
            let mut rng = litho_math::DeterministicRng::new(seed);
            let a = RealMatrix::from_fn(5, 5, |_, _| rng.uniform(0.0, 1.0));
            let b = RealMatrix::from_fn(5, 5, |_, _| rng.uniform(0.0, 1.0));
            prop_assert!((mse(&a, &b) - mse(&b, &a)).abs() < 1e-15);
            prop_assert!((max_error(&a, &b) - max_error(&b, &a)).abs() < 1e-15);
        }
    }
}
