//! Synthetic layout generators for the four dataset families.
//!
//! Each generator reproduces the qualitative shape distribution of the
//! corresponding benchmark in the paper (Table II / Fig. 2(a)):
//!
//! * **B2v** (ISPD-2019 via layer) — arrays of small square contacts with
//!   randomized pitch, jitter and dropout.
//! * **B2m** (ISPD-2019 metal layer) — Manhattan routing tracks: long wires of
//!   varying width with occasional vertical jogs.
//! * **B1** (ICCAD-2013 metal clips) — a handful of larger rectilinear
//!   polygons built from overlapping rectangles, mimicking the contest's
//!   isolated test patterns.
//! * **B1opc** — B1 layouts decorated by a rule-based OPC pass: edge biasing,
//!   corner serifs and sub-resolution assist features (SRAFs), mimicking the
//!   MOSAIC-corrected masks the paper tests robustness on.
//!
//! All dimensions are drawn in nanometres and converted to pixels through
//! [`GeneratorConfig::pixel_nm`], so the same generator produces consistent
//! geometry at any raster resolution.

use litho_math::DeterministicRng;

use crate::layout::{Layout, Rect};

/// Geometry settings shared by all generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Tile edge length in pixels.
    pub tile_px: usize,
    /// Physical pixel pitch in nanometres.
    pub pixel_nm: f64,
}

impl GeneratorConfig {
    /// Creates a generator configuration.
    ///
    /// # Panics
    ///
    /// Panics if the tile is smaller than 32 px or the pixel pitch is not
    /// positive.
    pub fn new(tile_px: usize, pixel_nm: f64) -> Self {
        assert!(tile_px >= 32, "tile must be at least 32 px");
        assert!(pixel_nm > 0.0, "pixel pitch must be positive");
        Self { tile_px, pixel_nm }
    }

    /// Physical tile extent in nanometres.
    pub fn tile_nm(&self) -> f64 {
        self.tile_px as f64 * self.pixel_nm
    }

    fn nm_to_px(&self, nm: f64) -> i64 {
        (nm / self.pixel_nm).round().max(1.0) as i64
    }
}

/// Generates a via-layer layout (B2v-like): a jittered array of square
/// contacts with random dropout.
pub fn via_layer(config: &GeneratorConfig, rng: &mut DeterministicRng) -> Layout {
    let mut layout = Layout::new(config.tile_px);
    let via_nm = rng.uniform(60.0, 80.0);
    let pitch_nm = rng.uniform(140.0, 220.0);
    let via_px = config.nm_to_px(via_nm);
    let pitch_px = config.nm_to_px(pitch_nm).max(via_px + 2);
    let keep_probability = rng.uniform(0.35, 0.8);
    let jitter_px = config.nm_to_px(12.0);

    let mut y = pitch_px / 2;
    while y + via_px < config.tile_px as i64 {
        let mut x = pitch_px / 2;
        while x + via_px < config.tile_px as i64 {
            if rng.bernoulli(keep_probability) {
                let dx = rng.uniform(-(jitter_px as f64), jitter_px as f64) as i64;
                let dy = rng.uniform(-(jitter_px as f64), jitter_px as f64) as i64;
                layout.push_if_clear(Rect::from_size(x + dx, y + dy, via_px, via_px));
            }
            x += pitch_px;
        }
        y += pitch_px;
    }
    ensure_non_empty(layout, config, via_px)
}

/// Generates a metal-layer layout (B2m-like): horizontal routing tracks with
/// randomized segment lengths, widths and occasional vertical jogs.
pub fn metal_layer(config: &GeneratorConfig, rng: &mut DeterministicRng) -> Layout {
    let mut layout = Layout::new(config.tile_px);
    let track_pitch_nm = rng.uniform(120.0, 200.0);
    let pitch_px = config.nm_to_px(track_pitch_nm);
    let tile = config.tile_px as i64;

    let mut y = pitch_px / 2;
    while y < tile {
        let width_px = config.nm_to_px(rng.uniform(45.0, 90.0));
        if rng.bernoulli(0.8) {
            // One or two wire segments on this track.
            let segments = if rng.bernoulli(0.35) { 2 } else { 1 };
            let mut cursor = rng.uniform_usize(0, (tile as usize / 4).max(1)) as i64;
            for _ in 0..segments {
                let max_len = (tile - cursor).max(40);
                let len_px = config
                    .nm_to_px(rng.uniform(200.0, config.tile_nm() * 0.8))
                    .min(max_len);
                if len_px > 8 {
                    layout.push(Rect::from_size(cursor, y, len_px, width_px));
                    // Occasionally drop a vertical jog from a segment end.
                    if rng.bernoulli(0.3) {
                        let jog_len = config.nm_to_px(rng.uniform(100.0, 300.0));
                        let jog_x = (cursor + len_px - width_px).max(0);
                        layout.push(Rect::from_size(jog_x, y, width_px, jog_len.min(tile - y)));
                    }
                }
                cursor += len_px + config.nm_to_px(rng.uniform(80.0, 200.0));
                if cursor >= tile {
                    break;
                }
            }
        }
        y += pitch_px;
    }
    ensure_non_empty(layout, config, config.nm_to_px(70.0))
}

/// Generates an ICCAD-2013-style clip (B1-like): a few larger isolated
/// rectilinear shapes built from overlapping rectangles.
pub fn iccad_clip(config: &GeneratorConfig, rng: &mut DeterministicRng) -> Layout {
    let mut layout = Layout::new(config.tile_px);
    let tile = config.tile_px as i64;
    let shapes = rng.uniform_usize(2, 6);
    for _ in 0..shapes {
        let base_w = config.nm_to_px(rng.uniform(150.0, 500.0));
        let base_h = config.nm_to_px(rng.uniform(60.0, 120.0));
        let x0 = rng.uniform_usize(0, (tile as usize * 3 / 4).max(1)) as i64;
        let y0 = rng.uniform_usize(0, (tile as usize * 3 / 4).max(1)) as i64;
        let horizontal = Rect::from_size(x0, y0, base_w, base_h);
        layout.push(horizontal);
        // Make an L or T shape with probability 0.6.
        if rng.bernoulli(0.6) {
            let arm_w = config.nm_to_px(rng.uniform(60.0, 120.0));
            let arm_h = config.nm_to_px(rng.uniform(150.0, 400.0));
            let arm_x = x0 + rng.uniform_usize(0, (base_w as usize).max(1)) as i64;
            layout.push(Rect::from_size(arm_x, y0, arm_w, arm_h));
        }
    }
    ensure_non_empty(layout, config, config.nm_to_px(200.0))
}

/// Applies a rule-based OPC decoration pass to an existing layout, producing a
/// B1opc-like mask: edge biasing, corner serifs and sub-resolution assist
/// features.
pub fn apply_opc(layout: &Layout, config: &GeneratorConfig, rng: &mut DeterministicRng) -> Layout {
    let mut decorated = Layout::new(layout.tile_px());
    let serif_px = config.nm_to_px(25.0);
    let sraf_width_px = config.nm_to_px(20.0);
    let sraf_offset_px = config.nm_to_px(90.0);

    for rect in layout.rects() {
        // Edge bias: grow or shrink each feature slightly.
        let bias =
            config.nm_to_px(rng.uniform(2.0, 12.0)) * if rng.bernoulli(0.8) { 1 } else { -1 };
        let biased = rect.expanded(bias).unwrap_or(*rect);
        decorated.push(biased);

        // Corner serifs: small squares on each outer corner.
        for &(cx, cy) in &[
            (biased.x0, biased.y0),
            (biased.x1, biased.y0),
            (biased.x0, biased.y1),
            (biased.x1, biased.y1),
        ] {
            if rng.bernoulli(0.75) {
                decorated.push(Rect::from_size(
                    cx - serif_px / 2,
                    cy - serif_px / 2,
                    serif_px,
                    serif_px,
                ));
            }
        }

        // SRAFs: thin bars offset from long horizontal edges; too narrow to
        // print but they reshape the spectrum like real assist features.
        if biased.width() >= 3 * sraf_offset_px && rng.bernoulli(0.7) {
            decorated.push(Rect::from_size(
                biased.x0,
                biased.y0 - sraf_offset_px,
                biased.width(),
                sraf_width_px,
            ));
            decorated.push(Rect::from_size(
                biased.x0,
                biased.y1 + sraf_offset_px - sraf_width_px,
                biased.width(),
                sraf_width_px,
            ));
        }
    }
    decorated
}

/// Guarantees a generator never returns an empty mask (which would be
/// optically meaningless) by dropping one centered feature when needed.
fn ensure_non_empty(mut layout: Layout, config: &GeneratorConfig, feature_px: i64) -> Layout {
    if layout.is_empty() {
        let center = config.tile_px as i64 / 2;
        layout.push(Rect::from_size(
            center - feature_px / 2,
            center - feature_px / 2,
            feature_px,
            feature_px,
        ));
    }
    layout
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> GeneratorConfig {
        GeneratorConfig::new(128, 4.0) // 512 nm tile at 4 nm/px
    }

    #[test]
    fn config_reports_physical_extent() {
        let c = config();
        assert_eq!(c.tile_nm(), 512.0);
        assert_eq!(c.nm_to_px(8.0), 2);
        assert_eq!(c.nm_to_px(1.0), 1); // clamped to one pixel
    }

    #[test]
    #[should_panic(expected = "at least 32")]
    fn tiny_tile_panics() {
        let _ = GeneratorConfig::new(16, 1.0);
    }

    #[test]
    fn via_layer_produces_small_squares() {
        let c = config();
        let mut rng = DeterministicRng::new(1);
        let layout = via_layer(&c, &mut rng);
        assert!(!layout.is_empty());
        for r in layout.rects() {
            assert_eq!(r.width(), r.height(), "vias are square");
            assert!(r.width() <= c.nm_to_px(90.0));
        }
        let density = layout.density();
        assert!(density > 0.005 && density < 0.5, "via density {density}");
    }

    #[test]
    fn metal_layer_produces_elongated_wires() {
        let c = config();
        let mut rng = DeterministicRng::new(2);
        let layout = metal_layer(&c, &mut rng);
        assert!(!layout.is_empty());
        // At least one rectangle should be much wider than tall (a wire).
        assert!(layout
            .rects()
            .iter()
            .any(|r| r.width() > 3 * r.height() || r.height() > 3 * r.width()));
    }

    #[test]
    fn iccad_clip_has_few_large_shapes() {
        let c = config();
        let mut rng = DeterministicRng::new(3);
        let layout = iccad_clip(&c, &mut rng);
        assert!(!layout.is_empty());
        assert!(layout.len() <= 12);
        let max_area = layout
            .rects()
            .iter()
            .map(Rect::area)
            .max()
            .expect("non-empty");
        assert!(max_area >= c.nm_to_px(150.0) * c.nm_to_px(60.0));
    }

    #[test]
    fn opc_adds_decorations() {
        let c = config();
        let mut rng = DeterministicRng::new(4);
        let base = iccad_clip(&c, &mut rng);
        let decorated = apply_opc(&base, &c, &mut rng);
        assert!(decorated.len() > base.len(), "OPC must add serifs/SRAFs");
        // The decorated mask is similar to but not identical with the base.
        let a = base.rasterize();
        let b = decorated.rasterize();
        let diff = a.zip_map(&b, |x, y| (x - y).abs()).sum();
        assert!(diff > 0.0);
        let overlap = a.zip_map(&b, |x, y| x * y).sum();
        assert!(
            overlap > 0.5 * a.sum(),
            "OPC must preserve the main features"
        );
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let c = config();
        let layout_a = via_layer(&c, &mut DeterministicRng::new(9));
        let layout_b = via_layer(&c, &mut DeterministicRng::new(9));
        let layout_c = via_layer(&c, &mut DeterministicRng::new(10));
        assert_eq!(layout_a, layout_b);
        assert_ne!(layout_a, layout_c);
    }

    #[test]
    fn different_families_have_different_statistics() {
        // The mean feature aspect ratio separates vias (1.0) from metal.
        let c = config();
        let mut rng = DeterministicRng::new(11);
        let vias = via_layer(&c, &mut rng);
        let metal = metal_layer(&c, &mut rng);
        let aspect = |l: &Layout| {
            l.rects()
                .iter()
                .map(|r| r.width().max(r.height()) as f64 / r.width().min(r.height()) as f64)
                .sum::<f64>()
                / l.len() as f64
        };
        assert!(aspect(&metal) > aspect(&vias));
    }

    #[test]
    fn ensure_non_empty_fallback() {
        let c = config();
        let empty = Layout::new(c.tile_px);
        let fixed = ensure_non_empty(empty, &c, 10);
        assert_eq!(fixed.len(), 1);
    }
}
