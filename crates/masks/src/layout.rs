//! Rectangle-based layout intermediate representation.
//!
//! Masks are unions of axis-aligned rectangles (the universal representation
//! for Manhattan layouts). A [`Layout`] carries its rectangles in pixel
//! coordinates and rasterizes to the binary [`RealMatrix`] masks consumed by
//! the optics and learning crates.

use litho_math::RealMatrix;

/// An axis-aligned rectangle in pixel coordinates; `x` is the column axis and
/// `y` the row axis. The interval is half-open: `[x0, x1) × [y0, y1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Left edge (inclusive).
    pub x0: i64,
    /// Top edge (inclusive).
    pub y0: i64,
    /// Right edge (exclusive).
    pub x1: i64,
    /// Bottom edge (exclusive).
    pub y1: i64,
}

impl Rect {
    /// Creates a rectangle from its corners.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle is not well-formed (`x1 <= x0` or `y1 <= y0`).
    pub fn new(x0: i64, y0: i64, x1: i64, y1: i64) -> Self {
        assert!(x1 > x0 && y1 > y0, "rectangle must have positive extent");
        Self { x0, y0, x1, y1 }
    }

    /// Creates a rectangle from a corner plus a size.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero or negative.
    pub fn from_size(x0: i64, y0: i64, width: i64, height: i64) -> Self {
        Self::new(x0, y0, x0 + width, y0 + height)
    }

    /// Width in pixels.
    pub fn width(&self) -> i64 {
        self.x1 - self.x0
    }

    /// Height in pixels.
    pub fn height(&self) -> i64 {
        self.y1 - self.y0
    }

    /// Area in pixels.
    pub fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// Whether two rectangles overlap (share at least one pixel).
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// Returns this rectangle expanded by `amount` pixels on every side
    /// (negative amounts shrink; returns `None` if the result collapses).
    pub fn expanded(&self, amount: i64) -> Option<Rect> {
        let r = Rect {
            x0: self.x0 - amount,
            y0: self.y0 - amount,
            x1: self.x1 + amount,
            y1: self.y1 + amount,
        };
        if r.x1 > r.x0 && r.y1 > r.y0 {
            Some(r)
        } else {
            None
        }
    }

    /// Clips the rectangle to `[0, size) × [0, size)`; returns `None` if
    /// nothing remains.
    pub fn clipped(&self, size: i64) -> Option<Rect> {
        let r = Rect {
            x0: self.x0.max(0),
            y0: self.y0.max(0),
            x1: self.x1.min(size),
            y1: self.y1.min(size),
        };
        if r.x1 > r.x0 && r.y1 > r.y0 {
            Some(r)
        } else {
            None
        }
    }
}

/// A mask layout: a union of rectangles on a square tile.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Layout {
    tile_px: usize,
    rects: Vec<Rect>,
}

impl Layout {
    /// Creates an empty layout on a `tile_px × tile_px` tile.
    ///
    /// # Panics
    ///
    /// Panics if `tile_px` is zero.
    pub fn new(tile_px: usize) -> Self {
        assert!(tile_px > 0, "tile size must be positive");
        Self {
            tile_px,
            rects: Vec::new(),
        }
    }

    /// Tile edge length in pixels.
    pub fn tile_px(&self) -> usize {
        self.tile_px
    }

    /// The rectangles of this layout (clipped only at rasterization time).
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Adds a rectangle; geometry outside the tile is kept and clipped later.
    pub fn push(&mut self, rect: Rect) {
        self.rects.push(rect);
    }

    /// Adds a rectangle if (after clipping to the tile) it does not overlap
    /// any existing rectangle. Returns `true` when the rectangle was added.
    pub fn push_if_clear(&mut self, rect: Rect) -> bool {
        let clipped = match rect.clipped(self.tile_px as i64) {
            Some(r) => r,
            None => return false,
        };
        if self.rects.iter().any(|r| r.overlaps(&clipped)) {
            return false;
        }
        self.rects.push(clipped);
        true
    }

    /// Number of rectangles.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// `true` when the layout holds no rectangles.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Fraction of the tile covered by geometry (union area / tile area).
    pub fn density(&self) -> f64 {
        let mask = self.rasterize();
        mask.sum() / mask.len() as f64
    }

    /// Rasterizes to a binary mask: 1 inside any rectangle, 0 elsewhere.
    pub fn rasterize(&self) -> RealMatrix {
        let n = self.tile_px;
        let mut mask = RealMatrix::zeros(n, n);
        for rect in &self.rects {
            if let Some(r) = rect.clipped(n as i64) {
                for y in r.y0..r.y1 {
                    for x in r.x0..r.x1 {
                        mask[(y as usize, x as usize)] = 1.0;
                    }
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rect_geometry() {
        let r = Rect::new(2, 3, 10, 7);
        assert_eq!(r.width(), 8);
        assert_eq!(r.height(), 4);
        assert_eq!(r.area(), 32);
        assert_eq!(Rect::from_size(2, 3, 8, 4), r);
    }

    #[test]
    #[should_panic(expected = "positive extent")]
    fn degenerate_rect_panics() {
        let _ = Rect::new(5, 5, 5, 10);
    }

    #[test]
    fn overlap_detection() {
        let a = Rect::new(0, 0, 10, 10);
        assert!(a.overlaps(&Rect::new(5, 5, 15, 15)));
        assert!(!a.overlaps(&Rect::new(10, 0, 20, 10))); // touching edges do not overlap
        assert!(!a.overlaps(&Rect::new(20, 20, 30, 30)));
    }

    #[test]
    fn expansion_and_clipping() {
        let r = Rect::new(4, 4, 8, 8);
        assert_eq!(r.expanded(2), Some(Rect::new(2, 2, 10, 10)));
        assert_eq!(r.expanded(-1), Some(Rect::new(5, 5, 7, 7)));
        assert_eq!(r.expanded(-2), None);
        assert_eq!(
            Rect::new(-3, -3, 5, 5).clipped(10),
            Some(Rect::new(0, 0, 5, 5))
        );
        assert_eq!(Rect::new(12, 12, 20, 20).clipped(10), None);
    }

    #[test]
    fn rasterize_counts_pixels() {
        let mut layout = Layout::new(16);
        layout.push(Rect::new(0, 0, 4, 4));
        layout.push(Rect::new(8, 8, 12, 10));
        let mask = layout.rasterize();
        assert_eq!(mask.sum() as i64, 16 + 8);
        assert_eq!(mask[(0, 0)], 1.0);
        assert_eq!(mask[(9, 9)], 1.0);
        assert_eq!(mask[(5, 5)], 0.0);
        assert!((layout.density() - 24.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn rasterize_clips_out_of_bounds_geometry() {
        let mut layout = Layout::new(8);
        layout.push(Rect::new(-4, -4, 4, 4));
        layout.push(Rect::new(100, 100, 120, 120));
        let mask = layout.rasterize();
        assert_eq!(mask.sum() as i64, 16);
    }

    #[test]
    fn push_if_clear_rejects_overlaps() {
        let mut layout = Layout::new(32);
        assert!(layout.push_if_clear(Rect::new(0, 0, 10, 10)));
        assert!(!layout.push_if_clear(Rect::new(5, 5, 15, 15)));
        assert!(layout.push_if_clear(Rect::new(20, 20, 30, 30)));
        assert!(!layout.push_if_clear(Rect::new(40, 40, 50, 50))); // fully outside
        assert_eq!(layout.len(), 2);
        assert!(!layout.is_empty());
    }

    #[test]
    fn overlapping_rects_do_not_double_count() {
        let mut layout = Layout::new(16);
        layout.push(Rect::new(0, 0, 8, 8));
        layout.push(Rect::new(4, 4, 12, 12));
        let mask = layout.rasterize();
        assert_eq!(mask.sum() as i64, 64 + 64 - 16);
    }

    proptest! {
        #[test]
        fn prop_rasterized_area_never_exceeds_rect_sum(seed in 0u64..100, count in 1usize..8) {
            let mut rng = litho_math::DeterministicRng::new(seed);
            let mut layout = Layout::new(32);
            let mut rect_sum = 0i64;
            for _ in 0..count {
                let x0 = rng.uniform_usize(0, 28) as i64;
                let y0 = rng.uniform_usize(0, 28) as i64;
                let w = rng.uniform_usize(1, 5) as i64;
                let h = rng.uniform_usize(1, 5) as i64;
                let r = Rect::from_size(x0, y0, w, h);
                rect_sum += r.area();
                layout.push(r);
            }
            let union_area = layout.rasterize().sum() as i64;
            prop_assert!(union_area <= rect_sum);
            prop_assert!(union_area > 0);
        }
    }
}
