//! Labelled lithography datasets.
//!
//! A [`Dataset`] pairs generated masks with golden aerial and resist images
//! produced by the rigorous [`HopkinsSimulator`], mirroring how the paper's
//! benchmarks were labelled by lithosim / Calibre (Table II).

use litho_math::{DeterministicRng, RealMatrix};
use litho_optics::{HopkinsSimulator, ProcessCondition};

use crate::generators::{self, GeneratorConfig};

/// The dataset families of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// ICCAD-2013-style metal clips.
    B1,
    /// OPC-decorated ICCAD-2013-style clips.
    B1Opc,
    /// ISPD-2019-style metal routing layer.
    B2Metal,
    /// ISPD-2019-style via layer.
    B2Via,
}

impl DatasetKind {
    /// Short alias used in tables and logs (matches the paper's notation).
    pub fn alias(&self) -> &'static str {
        match self {
            DatasetKind::B1 => "B1",
            DatasetKind::B1Opc => "B1opc",
            DatasetKind::B2Metal => "B2m",
            DatasetKind::B2Via => "B2v",
        }
    }

    /// All four dataset kinds in paper order.
    pub fn all() -> [DatasetKind; 4] {
        [
            DatasetKind::B1,
            DatasetKind::B1Opc,
            DatasetKind::B2Metal,
            DatasetKind::B2Via,
        ]
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.alias())
    }
}

/// One labelled sample: a mask with its golden aerial and resist images.
#[derive(Debug, Clone, PartialEq)]
pub struct LithoSample {
    /// Binary mask (1 = chrome opening / transmissive region).
    pub mask: RealMatrix,
    /// Golden aerial image, normalized to clear-field intensity 1.
    pub aerial: RealMatrix,
    /// Golden binary resist image.
    pub resist: RealMatrix,
}

/// A named collection of labelled samples.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    name: String,
    samples: Vec<LithoSample>,
}

impl Dataset {
    /// Creates an empty dataset with a name.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            samples: Vec::new(),
        }
    }

    /// Generates `count` labelled samples of the given family, using the
    /// simulator's tile geometry and a deterministic seed.
    pub fn generate(
        kind: DatasetKind,
        count: usize,
        simulator: &HopkinsSimulator,
        seed: u64,
    ) -> Self {
        let optics = simulator.config();
        let generator_config = GeneratorConfig::new(optics.tile_px, optics.pixel_nm);
        let mut rng = DeterministicRng::new(seed);
        let mut dataset = Self::new(kind.alias());
        for _ in 0..count {
            let layout = match kind {
                DatasetKind::B1 => generators::iccad_clip(&generator_config, &mut rng),
                DatasetKind::B1Opc => {
                    let base = generators::iccad_clip(&generator_config, &mut rng);
                    generators::apply_opc(&base, &generator_config, &mut rng)
                }
                DatasetKind::B2Metal => generators::metal_layer(&generator_config, &mut rng),
                DatasetKind::B2Via => generators::via_layer(&generator_config, &mut rng),
            };
            let mask = layout.rasterize();
            let (aerial, resist) = simulator.simulate(&mask);
            dataset.push(LithoSample {
                mask,
                aerial,
                resist,
            });
        }
        dataset
    }

    /// Dataset name (e.g. `"B2v"` or `"B2m+B2v"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The samples.
    pub fn samples(&self) -> &[LithoSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Adds one sample.
    pub fn push(&mut self, sample: LithoSample) {
        self.samples.push(sample);
    }

    /// Splits into `(train, test)` with `train_fraction` of the samples (at
    /// least one sample on each side when possible).
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `(0, 1)` or the dataset has fewer
    /// than two samples.
    pub fn split(&self, train_fraction: f64) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must lie in (0, 1)"
        );
        assert!(self.len() >= 2, "need at least two samples to split");
        let train_count =
            ((self.len() as f64 * train_fraction).round() as usize).clamp(1, self.len() - 1);
        let mut train = Dataset::new(&format!("{}-train", self.name));
        let mut test = Dataset::new(&format!("{}-test", self.name));
        for (idx, sample) in self.samples.iter().enumerate() {
            if idx < train_count {
                train.push(sample.clone());
            } else {
                test.push(sample.clone());
            }
        }
        (train, test)
    }

    /// Returns a dataset containing the first `fraction` of the samples
    /// (used for the training-set-size sweep of Fig. 6(a)).
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `(0, 1]`.
    pub fn subset_fraction(&self, fraction: f64) -> Dataset {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must lie in (0, 1]"
        );
        let count = ((self.len() as f64 * fraction).round() as usize)
            .max(1)
            .min(self.len());
        let mut subset = Dataset::new(&format!("{}-{}pct", self.name, (fraction * 100.0).round()));
        for sample in &self.samples[..count] {
            subset.push(sample.clone());
        }
        subset
    }

    /// Merges two datasets (e.g. the paper's "B2m + B2v" mixture), preserving
    /// sample order: all of `self` followed by all of `other`.
    pub fn merged(&self, other: &Dataset) -> Dataset {
        let mut merged = Dataset::new(&format!("{}+{}", self.name, other.name));
        for s in self.samples.iter().chain(other.samples.iter()) {
            merged.push(s.clone());
        }
        merged
    }

    /// Shuffles the sample order deterministically.
    pub fn shuffled(&self, seed: u64) -> Dataset {
        let mut rng = DeterministicRng::new(seed);
        let mut indices: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut indices);
        let mut out = Dataset::new(&self.name);
        for idx in indices {
            out.push(self.samples[idx].clone());
        }
        out
    }

    /// Iterates over `(mask, aerial)` pairs — the training view used by the
    /// aerial-stage models.
    pub fn mask_aerial_pairs(&self) -> impl Iterator<Item = (&RealMatrix, &RealMatrix)> {
        self.samples.iter().map(|s| (&s.mask, &s.aerial))
    }

    /// Iterates over `(mask, resist)` pairs — the training view used by the
    /// resist-stage models.
    pub fn mask_resist_pairs(&self) -> impl Iterator<Item = (&RealMatrix, &RealMatrix)> {
        self.samples.iter().map(|s| (&s.mask, &s.resist))
    }
}

/// A process-window training corpus: one shared mask set, labelled by the
/// rigorous simulator at every condition of a focus × dose grid.
///
/// All conditions see the *same* masks (the realistic focus-exposure-matrix
/// setup: one layout, many exposures), so a conditioned model can attribute
/// every label difference to the condition alone. Simulators are rebuilt once
/// per unique defocus; dose variants reuse the defocus group's aerial images
/// and only re-develop the resist (dose never changes the normalized aerial).
#[derive(Debug, Clone, Default)]
pub struct ProcessDataset {
    name: String,
    groups: Vec<(ProcessCondition, Dataset)>,
}

impl ProcessDataset {
    /// Generates `count` masks of the given family and labels them at every
    /// condition (in the given order), using the nominal simulator's
    /// geometry. The nominal `simulator` itself is reused for any condition
    /// at best focus and unit dose.
    pub fn generate(
        kind: DatasetKind,
        count: usize,
        simulator: &HopkinsSimulator,
        conditions: &[ProcessCondition],
        seed: u64,
    ) -> Self {
        assert!(
            !conditions.is_empty(),
            "need at least one process condition"
        );
        let optics = simulator.config();
        let generator_config = GeneratorConfig::new(optics.tile_px, optics.pixel_nm);
        let mut rng = DeterministicRng::new(seed);
        let masks: Vec<RealMatrix> = (0..count)
            .map(|_| {
                let layout = match kind {
                    DatasetKind::B1 => generators::iccad_clip(&generator_config, &mut rng),
                    DatasetKind::B1Opc => {
                        let base = generators::iccad_clip(&generator_config, &mut rng);
                        generators::apply_opc(&base, &generator_config, &mut rng)
                    }
                    DatasetKind::B2Metal => generators::metal_layer(&generator_config, &mut rng),
                    DatasetKind::B2Via => generators::via_layer(&generator_config, &mut rng),
                };
                layout.rasterize()
            })
            .collect();

        // The cropped mask spectrum is condition-independent (defocus changes
        // the kernels, never the mask), so it is computed exactly once per
        // mask and reused by every defocus group — the per-condition FFT
        // budget is pinned by `tests/spectrum_reuse.rs`. The kernel grid is
        // the same for every `at_condition` rebuild, so one crop fits all.
        let tile = optics.tile_px;
        let spectra: Vec<_> = masks
            .iter()
            .map(|m| simulator.kernels().cropped_mask_spectrum(m))
            .collect();

        // One simulator (and one aerial pass) per unique defocus; dose
        // variants share the aerials and differ only in development.
        let mut defocus_cache: Vec<(f64, HopkinsSimulator, Vec<RealMatrix>)> = Vec::new();
        let mut groups = Vec::with_capacity(conditions.len());
        for condition in conditions {
            condition.validate();
            let cache_idx = match defocus_cache
                .iter()
                .position(|(f, _, _)| *f == condition.defocus_nm)
            {
                Some(idx) => idx,
                None => {
                    // At best focus the passed-in nominal simulator already
                    // holds the right TCC/SOCS stack — cloning it skips a
                    // full TCC assembly + eigendecomposition.
                    let sim = if condition.defocus_nm == 0.0 {
                        simulator.clone()
                    } else {
                        simulator.at_condition(&ProcessCondition {
                            defocus_nm: condition.defocus_nm,
                            dose: 1.0,
                        })
                    };
                    let aerials = masks
                        .iter()
                        .zip(&spectra)
                        .map(|(m, spectrum)| {
                            sim.kernels().aerial_from_cropped_spectrum(
                                spectrum,
                                m.len(),
                                tile,
                                tile,
                            )
                        })
                        .collect();
                    defocus_cache.push((condition.defocus_nm, sim, aerials));
                    defocus_cache.len() - 1
                }
            };
            let (_, sim, aerials) = &defocus_cache[cache_idx];
            let resist =
                litho_optics::ResistModel::with_dose(sim.config().resist_threshold, condition.dose);
            let mut dataset = Dataset::new(&format!("{}@{condition}", kind.alias()));
            for (mask, aerial) in masks.iter().zip(aerials) {
                dataset.push(LithoSample {
                    mask: mask.clone(),
                    aerial: aerial.clone(),
                    resist: resist.develop(aerial),
                });
            }
            groups.push((*condition, dataset));
        }
        Self {
            name: kind.alias().to_owned(),
            groups,
        }
    }

    /// Dataset family name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-condition groups, in generation order.
    pub fn groups(&self) -> &[(ProcessCondition, Dataset)] {
        &self.groups
    }

    /// Number of conditions.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// `true` when there are no condition groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The group labelled at `condition`, if present.
    pub fn group(&self, condition: &ProcessCondition) -> Option<&Dataset> {
        self.groups
            .iter()
            .find(|(c, _)| c == condition)
            .map(|(_, d)| d)
    }

    /// Splits every condition group into `(train, test)` with the same
    /// fraction (see [`Dataset::split`]).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Dataset::split`].
    pub fn split(&self, train_fraction: f64) -> (ProcessDataset, ProcessDataset) {
        let mut train = ProcessDataset {
            name: format!("{}-train", self.name),
            groups: Vec::with_capacity(self.groups.len()),
        };
        let mut test = ProcessDataset {
            name: format!("{}-test", self.name),
            groups: Vec::with_capacity(self.groups.len()),
        };
        for (condition, dataset) in &self.groups {
            let (tr, te) = dataset.split(train_fraction);
            train.groups.push((*condition, tr));
            test.groups.push((*condition, te));
        }
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_optics::OpticalConfig;

    fn small_simulator() -> HopkinsSimulator {
        let config = OpticalConfig::builder()
            .tile_px(64)
            .pixel_nm(8.0)
            .kernel_count(6)
            .build();
        HopkinsSimulator::new(&config)
    }

    #[test]
    fn kinds_have_unique_aliases() {
        let aliases: Vec<&str> = DatasetKind::all().iter().map(|k| k.alias()).collect();
        assert_eq!(aliases, vec!["B1", "B1opc", "B2m", "B2v"]);
        assert_eq!(DatasetKind::B2Via.to_string(), "B2v");
    }

    #[test]
    fn generate_produces_consistent_samples() {
        let sim = small_simulator();
        let dataset = Dataset::generate(DatasetKind::B2Via, 4, &sim, 7);
        assert_eq!(dataset.len(), 4);
        assert_eq!(dataset.name(), "B2v");
        for sample in dataset.samples() {
            assert_eq!(sample.mask.shape(), (64, 64));
            assert_eq!(sample.aerial.shape(), (64, 64));
            assert!(sample.mask.iter().all(|&v| v == 0.0 || v == 1.0));
            assert!(sample.resist.iter().all(|&v| v == 0.0 || v == 1.0));
            assert!(sample.aerial.min() >= 0.0);
            // The resist is the thresholded aerial.
            let expected = sim.resist_image(&sample.aerial);
            assert_eq!(&expected, &sample.resist);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let sim = small_simulator();
        let a = Dataset::generate(DatasetKind::B2Metal, 3, &sim, 42);
        let b = Dataset::generate(DatasetKind::B2Metal, 3, &sim, 42);
        let c = Dataset::generate(DatasetKind::B2Metal, 3, &sim, 43);
        for (x, y) in a.samples().iter().zip(b.samples()) {
            assert_eq!(x.mask, y.mask);
        }
        assert!(a.samples()[0].mask != c.samples()[0].mask);
    }

    #[test]
    fn split_and_subset() {
        let sim = small_simulator();
        let dataset = Dataset::generate(DatasetKind::B1, 10, &sim, 1);
        let (train, test) = dataset.split(0.7);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        assert_eq!(train.name(), "B1-train");
        let subset = train.subset_fraction(0.5);
        assert_eq!(subset.len(), 4);
        assert_eq!(subset.samples()[0].mask, train.samples()[0].mask);
    }

    #[test]
    fn merged_concatenates() {
        let sim = small_simulator();
        let a = Dataset::generate(DatasetKind::B2Metal, 2, &sim, 2);
        let b = Dataset::generate(DatasetKind::B2Via, 3, &sim, 3);
        let merged = a.merged(&b);
        assert_eq!(merged.len(), 5);
        assert_eq!(merged.name(), "B2m+B2v");
        assert_eq!(merged.samples()[0].mask, a.samples()[0].mask);
        assert_eq!(merged.samples()[2].mask, b.samples()[0].mask);
    }

    #[test]
    fn shuffle_preserves_content() {
        let sim = small_simulator();
        let dataset = Dataset::generate(DatasetKind::B2Via, 6, &sim, 5);
        let shuffled = dataset.shuffled(99);
        assert_eq!(shuffled.len(), dataset.len());
        let sum_masks = |d: &Dataset| d.samples().iter().map(|s| s.mask.sum()).sum::<f64>();
        assert!((sum_masks(&dataset) - sum_masks(&shuffled)).abs() < 1e-9);
    }

    #[test]
    fn pair_iterators_yield_all_samples() {
        let sim = small_simulator();
        let dataset = Dataset::generate(DatasetKind::B1Opc, 3, &sim, 8);
        assert_eq!(dataset.mask_aerial_pairs().count(), 3);
        assert_eq!(dataset.mask_resist_pairs().count(), 3);
    }

    #[test]
    #[should_panic(expected = "train fraction")]
    fn bad_split_fraction_panics() {
        let sim = small_simulator();
        let dataset = Dataset::generate(DatasetKind::B1, 4, &sim, 1);
        let _ = dataset.split(1.0);
    }

    #[test]
    fn process_dataset_shares_masks_and_varies_labels() {
        let sim = small_simulator();
        let conditions = [
            ProcessCondition::nominal(),
            ProcessCondition::new(120.0, 1.0),
            ProcessCondition::new(0.0, 1.3),
        ];
        let pd = ProcessDataset::generate(DatasetKind::B1, 3, &sim, &conditions, 9);
        assert_eq!(pd.len(), 3);
        assert!(!pd.is_empty());
        assert_eq!(pd.name(), "B1");
        let nominal = pd.group(&conditions[0]).expect("nominal group");
        let defocused = pd.group(&conditions[1]).expect("defocused group");
        let dosed = pd.group(&conditions[2]).expect("dosed group");
        assert_eq!(nominal.len(), 3);
        for i in 0..3 {
            // Same masks everywhere.
            assert_eq!(nominal.samples()[i].mask, defocused.samples()[i].mask);
            assert_eq!(nominal.samples()[i].mask, dosed.samples()[i].mask);
            // Defocus changes the aerial; dose does not.
            let diff = nominal.samples()[i]
                .aerial
                .zip_map(&defocused.samples()[i].aerial, |a, b| (a - b).abs())
                .max();
            assert!(diff > 1e-6, "defocus must change the aerial");
            assert_eq!(nominal.samples()[i].aerial, dosed.samples()[i].aerial);
        }
        // Overdose prints at least as much as nominal.
        let printed = |d: &Dataset| d.samples().iter().map(|s| s.resist.sum()).sum::<f64>();
        assert!(printed(dosed) >= printed(nominal));
        // Nominal group matches the plain simulator labels exactly.
        let (aerial, resist) = sim.simulate(&nominal.samples()[0].mask);
        assert_eq!(nominal.samples()[0].aerial, aerial);
        assert_eq!(nominal.samples()[0].resist, resist);
        // Split preserves the grid structure.
        let (train, test) = pd.split(0.67);
        assert_eq!(train.len(), 3);
        assert_eq!(train.groups()[0].1.len(), 2);
        assert_eq!(test.groups()[0].1.len(), 1);
        assert!(pd.group(&ProcessCondition::new(999.0, 1.0)).is_none());
    }
}
