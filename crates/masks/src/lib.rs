//! Synthetic mask layouts and dataset assembly.
//!
//! The paper evaluates on ICCAD-2013 and ISPD-2019 mask tiles labelled by
//! proprietary lithography engines. Neither the layouts nor the engines are
//! redistributable, so this crate generates synthetic layouts with the same
//! qualitative distribution differences — via arrays, Manhattan metal routing
//! and OPC-decorated metal clips — and labels them with the rigorous
//! [`litho_optics::HopkinsSimulator`]. See DESIGN.md §1 for the substitution
//! rationale.
//!
//! * [`layout`] — rectangle-based layout IR and rasterization.
//! * [`generators`] — the four dataset families (B1, B1opc, B2m, B2v).
//! * [`dataset`] — labelled samples, train/test splits, merging and subsets.
//! * [`chip`] — multi-tile chip layouts and the mosaic generator feeding the
//!   full-chip tiling engine.

#![forbid(unsafe_code)]

pub mod chip;
pub mod dataset;
pub mod generators;
pub mod layout;

pub use chip::{chip_mosaic, ChipLayout};
pub use dataset::{Dataset, DatasetKind, LithoSample, ProcessDataset};
pub use generators::GeneratorConfig;
pub use layout::{Layout, Rect};
