//! Multi-tile chip layouts: rectangle unions on arbitrarily large,
//! possibly non-square rasters.
//!
//! [`Layout`](crate::Layout) is deliberately bound to one square training
//! tile; a [`ChipLayout`] is the full-chip counterpart consumed by the
//! `litho_serve` tiling engine. [`chip_mosaic`] scales the per-tile dataset
//! generators up to whole layouts by planting an independently generated
//! tile of the chosen family at every grid position — the qualitative
//! statistics of each family are preserved while the total extent grows
//! without bound.

use litho_math::{DeterministicRng, RealMatrix};

use crate::dataset::DatasetKind;
use crate::generators::{self, GeneratorConfig};
use crate::layout::Rect;

/// A mask layout on a `rows_px × cols_px` chip raster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipLayout {
    rows_px: usize,
    cols_px: usize,
    rects: Vec<Rect>,
}

impl ChipLayout {
    /// Creates an empty chip layout.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows_px: usize, cols_px: usize) -> Self {
        assert!(
            rows_px > 0 && cols_px > 0,
            "chip dimensions must be non-zero"
        );
        Self {
            rows_px,
            cols_px,
            rects: Vec::new(),
        }
    }

    /// Chip raster dimensions `(rows, cols)` in pixels.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows_px, self.cols_px)
    }

    /// The rectangles (clipped only at rasterization time).
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Number of rectangles.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// `true` when the layout holds no rectangles.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Adds a rectangle; geometry outside the chip is kept and clipped later.
    pub fn push(&mut self, rect: Rect) {
        self.rects.push(rect);
    }

    /// The rectangles as `[x0, y0, x1, y1]` corner quadruples — the exact
    /// wire order of the serving tier's rect-mask grammar, so a chip layout
    /// can be submitted to `/v1/simulate` or `/v1/jobs` without re-encoding
    /// (`MaskSpec::Rects { rects: chip.rect_corners(), .. }`).
    pub fn rect_corners(&self) -> Vec<[i64; 4]> {
        self.rects
            .iter()
            .map(|rect| [rect.x0, rect.y0, rect.x1, rect.y1])
            .collect()
    }

    /// Fraction of the chip covered by geometry.
    pub fn density(&self) -> f64 {
        let mask = self.rasterize();
        mask.sum() / mask.len() as f64
    }

    /// Rasterizes to a binary chip mask: 1 inside any rectangle, 0 elsewhere.
    pub fn rasterize(&self) -> RealMatrix {
        let mut mask = RealMatrix::zeros(self.rows_px, self.cols_px);
        for rect in &self.rects {
            let x0 = rect.x0.clamp(0, self.cols_px as i64) as usize;
            let x1 = rect.x1.clamp(0, self.cols_px as i64) as usize;
            let y0 = rect.y0.clamp(0, self.rows_px as i64) as usize;
            let y1 = rect.y1.clamp(0, self.rows_px as i64) as usize;
            for y in y0..y1 {
                for x in x0..x1 {
                    mask[(y, x)] = 1.0;
                }
            }
        }
        mask
    }
}

/// Generates a `tiles_y × tiles_x` mosaic chip of the given dataset family:
/// every grid cell carries an independently generated tile-sized layout,
/// offset to its position. Deterministic per seed.
///
/// # Panics
///
/// Panics if either grid dimension is zero (tile geometry is validated by
/// [`GeneratorConfig`]).
pub fn chip_mosaic(
    kind: DatasetKind,
    tiles_y: usize,
    tiles_x: usize,
    tile: &GeneratorConfig,
    seed: u64,
) -> ChipLayout {
    assert!(tiles_y > 0 && tiles_x > 0, "mosaic grid must be non-empty");
    let t = tile.tile_px as i64;
    let mut chip = ChipLayout::new(tiles_y * tile.tile_px, tiles_x * tile.tile_px);
    let mut rng = DeterministicRng::new(seed);
    for ty in 0..tiles_y {
        for tx in 0..tiles_x {
            let layout = match kind {
                DatasetKind::B1 => generators::iccad_clip(tile, &mut rng),
                DatasetKind::B1Opc => {
                    let base = generators::iccad_clip(tile, &mut rng);
                    generators::apply_opc(&base, tile, &mut rng)
                }
                DatasetKind::B2Metal => generators::metal_layer(tile, &mut rng),
                DatasetKind::B2Via => generators::via_layer(tile, &mut rng),
            };
            let (dy, dx) = (ty as i64 * t, tx as i64 * t);
            for rect in layout.rects() {
                // Clip to the source cell first so a tile's geometry cannot
                // bleed into its neighbours, then translate into place.
                if let Some(clipped) = rect.clipped(t) {
                    chip.push(Rect::new(
                        clipped.x0 + dx,
                        clipped.y0 + dy,
                        clipped.x1 + dx,
                        clipped.y1 + dy,
                    ));
                }
            }
        }
    }
    chip
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile_config() -> GeneratorConfig {
        GeneratorConfig::new(64, 8.0)
    }

    #[test]
    fn chip_layout_rasterizes_non_square() {
        let mut chip = ChipLayout::new(40, 100);
        chip.push(Rect::new(0, 0, 10, 10));
        chip.push(Rect::new(90, 30, 120, 60)); // clipped at both edges
        assert_eq!(chip.shape(), (40, 100));
        assert_eq!(chip.len(), 2);
        assert!(!chip.is_empty());
        let mask = chip.rasterize();
        assert_eq!(mask.shape(), (40, 100));
        assert_eq!(mask.sum() as i64, 100 + 10 * 10);
        assert!((chip.density() - 200.0 / 4000.0).abs() < 1e-12);
    }

    #[test]
    fn rect_corners_round_trip_the_wire_order() {
        let mut chip = ChipLayout::new(40, 100);
        chip.push(Rect::new(2, 4, 10, 12));
        chip.push(Rect::new(90, 30, 120, 60));
        let corners = chip.rect_corners();
        assert_eq!(corners, vec![[2, 4, 10, 12], [90, 30, 120, 60]]);
        // Rebuilding a layout from the quadruples reproduces the raster.
        let mut rebuilt = ChipLayout::new(40, 100);
        for [x0, y0, x1, y1] in corners {
            rebuilt.push(Rect::new(x0, y0, x1, y1));
        }
        assert_eq!(rebuilt.rasterize(), chip.rasterize());
    }

    #[test]
    fn mosaic_covers_every_cell() {
        let tile = tile_config();
        let chip = chip_mosaic(DatasetKind::B2Via, 3, 2, &tile, 5);
        assert_eq!(chip.shape(), (192, 128));
        let mask = chip.rasterize();
        // Generators never emit an empty tile, so every cell has geometry.
        for ty in 0..3 {
            for tx in 0..2 {
                let cell = mask.submatrix(ty * 64, tx * 64, 64, 64);
                assert!(
                    cell.sum() > 0.0,
                    "mosaic cell ({ty}, {tx}) must carry geometry"
                );
            }
        }
    }

    #[test]
    fn mosaic_cells_stay_inside_their_cell() {
        let tile = tile_config();
        let chip = chip_mosaic(DatasetKind::B2Metal, 2, 2, &tile, 9);
        for rect in chip.rects() {
            assert!(rect.x0 >= 0 && rect.y0 >= 0);
            assert!(rect.x1 <= 128 && rect.y1 <= 128);
            // Each rect stays inside the 64-px cell it was generated for.
            assert_eq!(rect.x0 / 64, (rect.x1 - 1) / 64, "{rect:?} spans cells");
            assert_eq!(rect.y0 / 64, (rect.y1 - 1) / 64, "{rect:?} spans cells");
        }
    }

    #[test]
    fn mosaic_is_deterministic_and_varied() {
        let tile = tile_config();
        let a = chip_mosaic(DatasetKind::B1, 2, 2, &tile, 1);
        let b = chip_mosaic(DatasetKind::B1, 2, 2, &tile, 1);
        let c = chip_mosaic(DatasetKind::B1, 2, 2, &tile, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Cells differ from each other (independent generator draws).
        let mask = a.rasterize();
        let first = mask.submatrix(0, 0, 64, 64);
        let second = mask.submatrix(0, 64, 64, 64);
        assert_ne!(first, second);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_mosaic_grid_panics() {
        let _ = chip_mosaic(DatasetKind::B1, 0, 2, &tile_config(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_sized_chip_panics() {
        let _ = ChipLayout::new(0, 10);
    }
}
