//! Deterministic data-parallel execution for the Nitho workspace.
//!
//! The build environment has no crates.io access, so this crate provides the
//! small slice of `rayon` the lithography stack actually needs, built on
//! [`std::thread::scope`] alone:
//!
//! * [`par_map`] — evaluate `f(0..n)` across threads, collecting results into
//!   a `Vec` **in index order**.
//! * [`par_map_reduce`] — [`par_map`] followed by a sequential fold in index
//!   order on the calling thread.
//! * [`par_chunks_mut`] — process equally sized chunks of a mutable slice in
//!   parallel (rows of a matrix, sub-ranges of a sample buffer).
//!
//! # Determinism contract
//!
//! Every helper computes the *same* per-item values regardless of the thread
//! count (each item is evaluated by exactly one closure call with no shared
//! mutable state) and every reduction happens **sequentially in item order on
//! the calling thread**. Floating-point results are therefore bit-identical
//! for 1, 2, or N threads — the property the workspace's
//! `NITHO_THREADS=1` vs `NITHO_THREADS=4` regression tests pin down.
//!
//! # Thread-count selection
//!
//! The effective worker count is, in priority order:
//!
//! 1. `1` inside a worker spawned by this crate (nested parallel regions run
//!    serially instead of oversubscribing),
//! 2. an active [`with_threads`] override on the calling thread,
//! 3. the `NITHO_THREADS` environment variable,
//! 4. [`std::thread::available_parallelism`].
//!
//! # Example
//!
//! ```
//! let squares = litho_parallel::par_map(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! let total = litho_parallel::par_map_reduce(8, |i| i as f64, 0.0, |a, b| a + b);
//! assert_eq!(total, 28.0);
//! ```

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::time::Instant;

use litho_obs::Counter;

/// Parallel regions entered (both spawned and degenerate inline regions).
static REGIONS_TOTAL: Counter = Counter::new(
    "litho_parallel_regions_total",
    "parallel regions entered (par_map / par_chunks_mut, including inline fallbacks)",
);
/// Wall time spent inside worker bodies, summed over workers (inline
/// execution counts as one worker). busy_seconds / elapsed_seconds ≈
/// effective parallelism.
static WORKER_BUSY_SECONDS_TOTAL: Counter = Counter::seconds_from_nanos(
    "litho_parallel_worker_busy_seconds_total",
    "cumulative wall time spent inside parallel worker bodies, summed over workers",
);

/// Registers this crate's metrics with the `litho_obs` registry. Idempotent.
pub fn register_metrics() {
    litho_obs::register(&REGIONS_TOTAL);
    litho_obs::register(&WORKER_BUSY_SECONDS_TOTAL);
}

/// Process-wide count of parallel regions entered.
pub fn total_parallel_regions() -> u64 {
    REGIONS_TOTAL.get()
}

/// Starts a busy-time measurement when metrics are enabled. `Instant::now`
/// is a vDSO clock read — no heap allocation, so the warm-path allocation
/// pins hold with instrumentation on.
fn busy_start() -> Option<Instant> {
    litho_obs::enabled().then(Instant::now)
}

fn busy_end(start: Option<Instant>) {
    if let Some(start) = start {
        WORKER_BUSY_SECONDS_TOTAL.add(start.elapsed().as_nanos() as u64);
    }
}

thread_local! {
    /// Set on worker threads spawned by this crate; forces nested parallel
    /// regions to run serially.
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Scoped thread-count override installed by [`with_threads`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Upper bound on worker threads; far above any sane `NITHO_THREADS` value,
/// only guards against pathological configuration.
const MAX_THREADS: usize = 256;

/// The maximum number of worker threads a parallel region started on this
/// thread may use.
///
/// Resolution order: worker context (`1`) → [`with_threads`] override →
/// `NITHO_THREADS` → [`std::thread::available_parallelism`].
pub fn max_threads() -> usize {
    if IS_WORKER.with(Cell::get) {
        return 1;
    }
    if let Some(n) = OVERRIDE.with(Cell::get) {
        return n.clamp(1, MAX_THREADS);
    }
    if let Ok(value) = std::env::var("NITHO_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(MAX_THREADS);
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// `true` when called from inside a worker of a parallel region (where nested
/// regions degrade to serial execution).
pub fn in_parallel_region() -> bool {
    IS_WORKER.with(Cell::get)
}

/// Runs `f` with the calling thread's worker count pinned to `threads`
/// (clamped to at least 1), restoring the previous setting afterwards —
/// including on unwind.
///
/// This is the race-free alternative to mutating the process-global
/// `NITHO_THREADS` variable from tests that compare thread counts.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _guard = Restore(OVERRIDE.with(|o| o.replace(Some(threads.max(1)))));
    f()
}

/// Worker count actually used for `items` independent work items. Whether a
/// workload is heavy enough to justify spawning at all is the caller's
/// decision (e.g. `litho_fft` gates on matrix size).
fn effective_threads(items: usize) -> usize {
    max_threads().min(items).max(1)
}

fn mark_worker() {
    IS_WORKER.with(|w| w.set(true));
}

/// Evaluates `f(i)` for every `i in 0..n` and returns the results in index
/// order. Items are distributed over at most [`max_threads`] scoped workers in
/// contiguous blocks; with one worker (or `n <= 1`) everything runs inline on
/// the calling thread.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = effective_threads(n);
    REGIONS_TOTAL.inc();
    if threads <= 1 || n <= 1 {
        let start = busy_start();
        let out = (0..n).map(f).collect();
        busy_end(start);
        return out;
    }
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let block = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (block_idx, block_slots) in slots.chunks_mut(block).enumerate() {
            let f = &f;
            scope.spawn(move || {
                mark_worker();
                let start = busy_start();
                for (offset, slot) in block_slots.iter_mut().enumerate() {
                    *slot = Some(f(block_idx * block + offset));
                }
                busy_end(start);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

/// [`par_map`] followed by a sequential left fold in index order on the
/// calling thread: `reduce(...reduce(reduce(init, f(0)), f(1))..., f(n-1))`.
///
/// Because the fold order never depends on the thread count, floating-point
/// reductions are bit-identical across 1..N threads.
pub fn par_map_reduce<T, A, F, R>(n: usize, f: F, init: A, mut reduce: R) -> A
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    R: FnMut(A, T) -> A,
{
    let mut acc = init;
    for item in par_map(n, f) {
        acc = reduce(acc, item);
    }
    acc
}

/// Splits `data` into consecutive chunks of exactly `chunk_len` elements and
/// calls `f(chunk_index, chunk)` for each, distributing contiguous runs of
/// chunks over at most [`max_threads`] scoped workers.
///
/// This is the mutable-access primitive: each chunk is visited by exactly one
/// closure call, so rows of a row-major matrix can be transformed in place
/// concurrently with no locking.
///
/// # Panics
///
/// Panics if `chunk_len` is zero or does not evenly divide `data.len()`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    assert_eq!(
        data.len() % chunk_len,
        0,
        "chunk_len {} must divide data length {}",
        chunk_len,
        data.len()
    );
    let n_chunks = data.len() / chunk_len;
    let threads = effective_threads(n_chunks);
    REGIONS_TOTAL.inc();
    if threads <= 1 || n_chunks <= 1 {
        let start = busy_start();
        for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(idx, chunk);
        }
        busy_end(start);
        return;
    }
    let chunks_per_worker = n_chunks.div_ceil(threads);
    std::thread::scope(|scope| {
        for (block_idx, block) in data.chunks_mut(chunks_per_worker * chunk_len).enumerate() {
            let f = &f;
            scope.spawn(move || {
                mark_worker();
                let start = busy_start();
                for (offset, chunk) in block.chunks_mut(chunk_len).enumerate() {
                    f(block_idx * chunks_per_worker + offset, chunk);
                }
                busy_end(start);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_index_order() {
        for threads in [1, 2, 3, 8] {
            let out = with_threads(threads, || par_map(17, |i| i * 3));
            assert_eq!(out, (0..17).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn par_map_reduce_is_bit_identical_across_thread_counts() {
        // Sums of values at very different magnitudes are rounding-order
        // sensitive; identical bits across thread counts prove the fixed-order
        // reduction contract.
        let f = |i: usize| (1.0f64 + i as f64).recip() * 10f64.powi((i % 7) as i32 - 3);
        let reference = with_threads(1, || par_map_reduce(100, f, 0.0f64, |a, b| a + b));
        for threads in [2, 3, 4, 7] {
            let parallel = with_threads(threads, || par_map_reduce(100, f, 0.0f64, |a, b| a + b));
            assert_eq!(reference.to_bits(), parallel.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_mut_visits_every_chunk_once() {
        for threads in [1, 2, 5] {
            let mut data = vec![0usize; 24];
            with_threads(threads, || {
                par_chunks_mut(&mut data, 4, |idx, chunk| {
                    for (k, v) in chunk.iter_mut().enumerate() {
                        *v += idx * 100 + k + 1;
                    }
                });
            });
            for (flat, &v) in data.iter().enumerate() {
                assert_eq!(v, (flat / 4) * 100 + flat % 4 + 1, "threads={threads}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn par_chunks_mut_rejects_ragged_chunks() {
        let mut data = vec![0u8; 10];
        par_chunks_mut(&mut data, 3, |_, _| {});
    }

    #[test]
    fn nested_regions_run_serially() {
        let nested_threads = with_threads(4, || {
            par_map(4, |_| {
                assert!(in_parallel_region());
                max_threads()
            })
        });
        assert_eq!(nested_threads, vec![1, 1, 1, 1]);
        assert!(!in_parallel_region());
    }

    #[test]
    fn with_threads_restores_previous_override() {
        let ambient = max_threads();
        with_threads(3, || {
            assert_eq!(max_threads(), 3);
            with_threads(2, || assert_eq!(max_threads(), 2));
            assert_eq!(max_threads(), 3);
        });
        assert_eq!(max_threads(), ambient);
    }

    #[test]
    fn with_threads_clamps_zero_to_one() {
        with_threads(0, || assert_eq!(max_threads(), 1));
    }
}
