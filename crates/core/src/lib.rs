//! **Nitho** — physics-informed optical kernel regression with complex-valued
//! neural fields (reproduction of Chen et al., DAC 2023).
//!
//! Instead of learning a mask → image mapping, Nitho learns the
//! mask-*independent* part of the lithography system: the transmission
//! cross-coefficient (TCC) optical kernels. A coordinate-based complex-valued
//! MLP ([`Cmlp`]) maps positional-encoded kernel-grid coordinates to complex
//! kernel values; the rest of the imaging pipeline (mask FFT, spectrum crop,
//! SOCS summation) stays exact and non-parametric, which is what gives the
//! method its generalization across mask layer types.
//!
//! The crate provides:
//!
//! * [`encoding`] — positional encodings: none, NeRF axis-aligned (Eq. (14)),
//!   and the complex Gaussian random-Fourier-feature mapping of Eq. (15).
//! * [`cmlp`] — the complex-valued multilayer perceptron of Eq. (12), built
//!   from `CLinear → CReLU` blocks on the autodiff tape.
//! * [`model`] — [`NithoModel`]: kernel-dimension design (Eq. (10)), the
//!   forward training procedure (Algorithm 1), stored-kernel fast lithography
//!   and evaluation helpers.
//! * [`training`] — training configuration and per-epoch loss reports.
//!
//! # Quickstart
//!
//! ```no_run
//! use litho_masks::{Dataset, DatasetKind};
//! use litho_optics::{HopkinsSimulator, OpticalConfig};
//! use nitho::{NithoConfig, NithoModel};
//!
//! // Golden engine + a small via-layer dataset.
//! let optics = OpticalConfig::builder().tile_px(128).pixel_nm(4.0).build();
//! let simulator = HopkinsSimulator::new(&optics);
//! let dataset = Dataset::generate(DatasetKind::B2Via, 32, &simulator, 7);
//! let (train, test) = dataset.split(0.75);
//!
//! // Train Nitho on mask–aerial pairs only.
//! let mut model = NithoModel::new(NithoConfig::default(), &optics);
//! model.train(&train);
//! let report = model.evaluate(&test, optics.resist_threshold);
//! println!("PSNR = {:.2} dB", report.aerial.psnr_db);
//! ```

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod cmlp;
pub mod encoding;
pub mod model;
pub mod training;

pub use checkpoint::{checkpoint_info, CheckpointInfo, CHECKPOINT_VERSION};
pub use cmlp::{Cmlp, CmlpArchitecture, PreparedInference};
pub use encoding::{ConditionEncoding, PositionalEncoding};
pub use model::{ConditionedKernels, EvaluationReport, NithoModel};
pub use training::{NithoConfig, TrainingReport};
