//! Training configuration and reports for the Nitho forward training
//! procedure (Algorithm 1).

use crate::encoding::{ConditionEncoding, PositionalEncoding};

/// Hyper-parameters of a [`NithoModel`](crate::NithoModel).
#[derive(Debug, Clone, PartialEq)]
pub struct NithoConfig {
    /// Kernel side length override (`m = n`). `None` derives it from the
    /// resolution limit, Eq. (10).
    pub kernel_side: Option<usize>,
    /// Number of predicted optical kernels `r` (the paper uses `r < 60`).
    pub kernel_count: usize,
    /// Width of the CMLP hidden layers.
    pub hidden_dim: usize,
    /// Number of hidden `CLinear → CReLU` blocks.
    pub hidden_blocks: usize,
    /// Positional encoding applied to kernel coordinates.
    pub encoding: PositionalEncoding,
    /// Process-window conditioning: when set, the neural field additionally
    /// takes the encoded `(defocus, dose)` condition as input and can be
    /// trained across a focus × dose grid
    /// ([`NithoModel::train_process_window`](crate::NithoModel::train_process_window)).
    /// `None` keeps the paper's nominal-only model (and its checkpoint
    /// fingerprint).
    pub condition: Option<ConditionEncoding>,
    /// Output resolution used while training. `None` picks the smallest
    /// power of two that comfortably contains the kernel grid — the
    /// "hierarchical" fast path; the loss is mathematically identical to
    /// full-resolution training because aerial images are band-limited.
    pub training_resolution: Option<usize>,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (masks per optimizer step).
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Seed controlling weight init, RFF frequencies and batch shuffling.
    pub seed: u64,
}

impl Default for NithoConfig {
    fn default() -> Self {
        Self {
            kernel_side: None,
            kernel_count: 12,
            hidden_dim: 64,
            hidden_blocks: 2,
            encoding: PositionalEncoding::default(),
            condition: None,
            training_resolution: None,
            epochs: 60,
            batch_size: 4,
            learning_rate: 3e-3,
            seed: 42,
        }
    }
}

impl NithoConfig {
    /// A reduced configuration for unit tests and quick experiments: smaller
    /// network, fewer kernels, fewer epochs.
    pub fn fast() -> Self {
        Self {
            kernel_count: 6,
            hidden_dim: 32,
            hidden_blocks: 1,
            encoding: PositionalEncoding::GaussianRff {
                features: 32,
                sigma: 3.0,
                seed: 0x4e49_5448,
            },
            epochs: 30,
            ..Self::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any field is degenerate (zero sizes, non-positive learning
    /// rate, or an even kernel-side override).
    pub fn validate(&self) {
        if let Some(side) = self.kernel_side {
            assert!(
                side >= 3 && side % 2 == 1,
                "kernel side must be an odd number ≥ 3"
            );
        }
        assert!(self.kernel_count > 0, "kernel count must be positive");
        assert!(self.hidden_dim > 0, "hidden dimension must be positive");
        assert!(self.epochs > 0, "epoch count must be positive");
        assert!(self.batch_size > 0, "batch size must be positive");
        assert!(self.learning_rate > 0.0, "learning rate must be positive");
        if let Some(condition) = &self.condition {
            condition.validate();
        }
    }

    /// `true` when the model takes a process condition as input.
    pub fn is_conditioned(&self) -> bool {
        self.condition.is_some()
    }
}

/// Per-epoch loss trace returned by
/// [`NithoModel::train`](crate::NithoModel::train).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainingReport {
    /// Mean training MSE per epoch, in clear-field-normalized intensity units.
    pub epoch_losses: Vec<f64>,
}

impl TrainingReport {
    /// Loss of the final epoch.
    ///
    /// # Panics
    ///
    /// Panics if the report is empty.
    pub fn final_loss(&self) -> f64 {
        *self.epoch_losses.last().expect("training report is empty")
    }

    /// Loss of the first epoch.
    ///
    /// # Panics
    ///
    /// Panics if the report is empty.
    pub fn initial_loss(&self) -> f64 {
        *self.epoch_losses.first().expect("training report is empty")
    }

    /// Ratio `final / initial`; below 1 means training made progress.
    pub fn improvement_ratio(&self) -> f64 {
        self.final_loss() / self.initial_loss().max(f64::MIN_POSITIVE)
    }

    /// Number of recorded epochs.
    pub fn len(&self) -> usize {
        self.epoch_losses.len()
    }

    /// `true` when no epochs were recorded.
    pub fn is_empty(&self) -> bool {
        self.epoch_losses.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let config = NithoConfig::default();
        config.validate();
        assert_eq!(config.kernel_count, 12);
        assert!(config.kernel_side.is_none());
    }

    #[test]
    fn fast_config_is_smaller() {
        let fast = NithoConfig::fast();
        fast.validate();
        let full = NithoConfig::default();
        assert!(fast.hidden_dim < full.hidden_dim);
        assert!(fast.kernel_count < full.kernel_count);
        assert!(fast.epochs < full.epochs);
    }

    #[test]
    #[should_panic(expected = "odd number")]
    fn even_kernel_side_panics() {
        let config = NithoConfig {
            kernel_side: Some(8),
            ..NithoConfig::default()
        };
        config.validate();
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn non_positive_learning_rate_panics() {
        let config = NithoConfig {
            learning_rate: 0.0,
            ..NithoConfig::default()
        };
        config.validate();
    }

    #[test]
    fn report_statistics() {
        let report = TrainingReport {
            epoch_losses: vec![1.0, 0.5, 0.1],
        };
        assert_eq!(report.len(), 3);
        assert!(!report.is_empty());
        assert_eq!(report.initial_loss(), 1.0);
        assert_eq!(report.final_loss(), 0.1);
        assert!((report.improvement_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_report_panics() {
        let _ = TrainingReport::default().final_loss();
    }
}
