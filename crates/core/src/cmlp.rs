//! The complex-valued multilayer perceptron (CMLP) of Eq. (12).
//!
//! `CMLP : CLinear → (CLinear → CReLU) × N → CLinear`
//!
//! Every weight and bias is a complex matrix stored in a
//! [`ParamStore`]; the forward pass is expressed on a [`Tape`] so the whole
//! network is differentiable end-to-end through the SOCS imaging equations.

use litho_autodiff::{NodeId, ParamId, ParamStore, Tape};
use litho_math::simd::{precision, simd_backend, Precision, SimdBackend};
use litho_math::{soa, ComplexMatrix, DeterministicRng};
use litho_obs::{Counter, Histogram};

/// Batched tape-free inference dispatches ([`Cmlp::infer_batch`] calls).
static INFER_DISPATCHES_TOTAL: Counter = Counter::new(
    "litho_cmlp_infer_dispatches_total",
    "batched tape-free CMLP inference dispatches",
);
/// Inputs per dispatch — how well the serving tier amortizes one weight
/// stream over concurrent conditions.
static INFER_BATCH_SIZE: Histogram = Histogram::new(
    "litho_cmlp_infer_batch_size",
    "inputs per batched CMLP inference dispatch",
    &[1, 2, 4, 8, 16, 32, 64, 128, u64::MAX],
);

/// Blocked forward passes by kernel backend and precision — one count per
/// input streamed through a [`PreparedInference`]. Four fixed label
/// combinations of one family, so operators can see which code path serving
/// traffic actually takes.
static KERNEL_DISPATCHES_SCALAR_F64: Counter = Counter::with_label(
    "litho_cmlp_kernel_dispatches_total",
    "blocked CMLP forward passes by kernel backend and precision",
    "backend=\"scalar\",precision=\"f64\"",
);
static KERNEL_DISPATCHES_SCALAR_F32: Counter = Counter::with_label(
    "litho_cmlp_kernel_dispatches_total",
    "blocked CMLP forward passes by kernel backend and precision",
    "backend=\"scalar\",precision=\"f32\"",
);
static KERNEL_DISPATCHES_AVX2_F64: Counter = Counter::with_label(
    "litho_cmlp_kernel_dispatches_total",
    "blocked CMLP forward passes by kernel backend and precision",
    "backend=\"avx2\",precision=\"f64\"",
);
static KERNEL_DISPATCHES_AVX2_F32: Counter = Counter::with_label(
    "litho_cmlp_kernel_dispatches_total",
    "blocked CMLP forward passes by kernel backend and precision",
    "backend=\"avx2\",precision=\"f32\"",
);

fn record_kernel_dispatch(backend: SimdBackend, precision: Precision) {
    match (backend, precision) {
        (SimdBackend::Scalar, Precision::F64) => KERNEL_DISPATCHES_SCALAR_F64.inc(),
        (SimdBackend::Scalar, Precision::F32) => KERNEL_DISPATCHES_SCALAR_F32.inc(),
        (SimdBackend::Avx2, Precision::F64) => KERNEL_DISPATCHES_AVX2_F64.inc(),
        (SimdBackend::Avx2, Precision::F32) => KERNEL_DISPATCHES_AVX2_F32.inc(),
    }
}

/// Registers this crate's metrics with the `litho_obs` registry. Idempotent.
pub fn register_metrics() {
    litho_obs::register(&INFER_DISPATCHES_TOTAL);
    litho_obs::register(&INFER_BATCH_SIZE);
    litho_obs::register(&KERNEL_DISPATCHES_SCALAR_F64);
    litho_obs::register(&KERNEL_DISPATCHES_SCALAR_F32);
    litho_obs::register(&KERNEL_DISPATCHES_AVX2_F64);
    litho_obs::register(&KERNEL_DISPATCHES_AVX2_F32);
}

/// Process-wide count of batched inference dispatches.
pub fn total_infer_dispatches() -> u64 {
    INFER_DISPATCHES_TOTAL.get()
}

/// Process-wide count of blocked forward passes that ran in reduced (f32)
/// precision, across both kernel backends. Surfaced by `/healthz` so
/// operators can confirm whether `NITHO_PRECISION=f32` actually took effect.
pub fn total_infer_f32_dispatches() -> u64 {
    KERNEL_DISPATCHES_SCALAR_F32.get() + KERNEL_DISPATCHES_AVX2_F32.get()
}

/// Architecture of a [`Cmlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmlpArchitecture {
    /// Input feature dimension (the positional-encoding output width).
    pub input_dim: usize,
    /// Width of the hidden `CLinear → CReLU` blocks.
    pub hidden_dim: usize,
    /// Number of hidden blocks (`N` in Eq. (12)).
    pub hidden_blocks: usize,
    /// Output dimension (the kernel order `r`: one complex kernel value per
    /// output column).
    pub output_dim: usize,
}

impl CmlpArchitecture {
    /// Total number of complex weights and biases.
    pub fn complex_parameter_count(&self) -> usize {
        let mut count = self.input_dim * self.hidden_dim + self.hidden_dim; // input layer
        for _ in 0..self.hidden_blocks {
            count += self.hidden_dim * self.hidden_dim + self.hidden_dim;
        }
        count += self.hidden_dim * self.output_dim + self.output_dim; // output layer
        count
    }
}

/// Rows per inference block: activations for one block stay L1/L2-resident
/// while the layer weights stream through.
const BLOCK_ROWS: usize = 64;

/// A complex-valued MLP with persistent parameters.
#[derive(Debug, Clone)]
pub struct Cmlp {
    architecture: CmlpArchitecture,
    params: ParamStore,
    weight_ids: Vec<ParamId>,
    bias_ids: Vec<ParamId>,
}

impl Cmlp {
    /// Creates a CMLP with Glorot-style complex initialization.
    ///
    /// # Panics
    ///
    /// Panics if any architecture dimension is zero.
    pub fn new(architecture: CmlpArchitecture, rng: &mut DeterministicRng) -> Self {
        assert!(
            architecture.input_dim > 0
                && architecture.hidden_dim > 0
                && architecture.output_dim > 0,
            "CMLP dimensions must be positive"
        );
        let mut params = ParamStore::new();
        let mut weight_ids = Vec::new();
        let mut bias_ids = Vec::new();

        let mut layer_dims = Vec::with_capacity(architecture.hidden_blocks + 2);
        layer_dims.push((architecture.input_dim, architecture.hidden_dim));
        for _ in 0..architecture.hidden_blocks {
            layer_dims.push((architecture.hidden_dim, architecture.hidden_dim));
        }
        layer_dims.push((architecture.hidden_dim, architecture.output_dim));

        for (layer, (fan_in, fan_out)) in layer_dims.into_iter().enumerate() {
            weight_ids.push(params.add_complex_glorot(
                &format!("cmlp.layer{layer}.weight"),
                fan_in,
                fan_out,
                rng,
            ));
            bias_ids.push(params.add_zeros(&format!("cmlp.layer{layer}.bias"), 1, fan_out));
        }

        Self {
            architecture,
            params,
            weight_ids,
            bias_ids,
        }
    }

    /// The network architecture.
    pub fn architecture(&self) -> CmlpArchitecture {
        self.architecture
    }

    /// The parameter store (for optimizers and persistence).
    pub fn params(&self) -> &ParamStore {
        &self.params
    }

    /// Mutable access to the parameter store (for optimizers and loading).
    pub fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.params
    }

    /// Number of real scalar parameters (complex elements count twice),
    /// the figure used for the paper's model-size comparison (Table I).
    pub fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }

    /// Model size in bytes at 32-bit precision per real scalar.
    pub fn size_bytes(&self) -> usize {
        self.params.size_bytes_f32()
    }

    /// Places every parameter on a tape as a gradient-carrying leaf and runs
    /// the forward pass from an input node of shape `batch × input_dim`.
    ///
    /// Returns the output node (`batch × output_dim`) and the tape node ids of
    /// the parameter leaves paired with their [`ParamId`]s, so the caller can
    /// fetch gradients after `backward` and hand them to an optimizer.
    ///
    /// # Panics
    ///
    /// Panics if the input node width does not match the architecture.
    pub fn forward(&self, tape: &mut Tape, input: NodeId) -> (NodeId, Vec<(ParamId, NodeId)>) {
        assert_eq!(
            tape.value(input).cols(),
            self.architecture.input_dim,
            "input width must match the CMLP input dimension"
        );
        let mut leaves = Vec::with_capacity(self.weight_ids.len() + self.bias_ids.len());
        let mut hidden = input;
        let layer_count = self.weight_ids.len();
        for layer in 0..layer_count {
            let w_id = self.weight_ids[layer];
            let b_id = self.bias_ids[layer];
            let w = tape.leaf(self.params.value(w_id).clone(), true);
            let b = tape.leaf(self.params.value(b_id).clone(), true);
            leaves.push((w_id, w));
            leaves.push((b_id, b));
            let product = tape.matmul(hidden, w);
            let with_bias = tape.add_bias_row(product, b);
            // CReLU on every layer except the final projection (Eq. (12)).
            hidden = if layer + 1 < layer_count {
                tape.crelu(with_bias)
            } else {
                with_bias
            };
        }
        (hidden, leaves)
    }

    /// Frozen inference pass: evaluates the network on a constant input
    /// without keeping gradients, returning the output value.
    ///
    /// This is the tape-free batched path: activations live in split-complex
    /// (SoA) buffers, pixels are processed in cache-sized row blocks, and
    /// every `X·W` product is a run of fused complex axpys over contiguous
    /// weight rows — no tape nodes, no per-layer matrix clones. Under the
    /// scalar backend at f64 the result is bit-identical to the tape
    /// evaluation (same multiply/accumulate order), pinned by
    /// `tape_and_batched_inference_agree_bitwise` below; the AVX2 backend's
    /// FMA contraction perturbs only the last bits, and `NITHO_PRECISION=f32`
    /// trades accuracy for speed explicitly (both bounded by the workspace
    /// equivalence suites).
    ///
    /// # Panics
    ///
    /// Panics if the input width does not match the architecture.
    pub fn infer(&self, input: &ComplexMatrix) -> ComplexMatrix {
        self.infer_batch(&[input])
            .pop()
            .expect("one input yields one output")
    }

    /// One SoA matmul dispatch over a *stack* of independent inputs: the
    /// layer weights and biases are split into SoA form **once** and every
    /// input's pixel rows stream through the same blocked kernel and the same
    /// activation buffers.
    ///
    /// Each input is processed by exactly the arithmetic of a solo
    /// [`Cmlp::infer`] call (row blocks never span inputs, accumulators are
    /// zeroed per row), so the outputs are **bit-identical to per-input
    /// inference regardless of how the batch is composed** — the property
    /// that lets a serving tier stack tile/condition inputs from different
    /// concurrent requests into one dispatch without perturbing any response
    /// (pinned by `infer_batch_is_bit_identical_for_any_composition` below).
    /// What the batch amortizes is everything row-count-independent: the SoA
    /// parameter split and the activation-buffer allocation are paid once for
    /// the whole stack. Inputs shorter than a row block are additionally
    /// stacked into shared blocks, so each layer's weight matrix streams from
    /// memory once per [`BLOCK_ROWS`] stacked rows instead of once per input
    /// — turning N weight-bound GEMV passes into one GEMM — while block-tall
    /// inputs (e.g. whole kernel-grid encodings) skip the stacking copies
    /// entirely.
    ///
    /// # Panics
    ///
    /// Panics if any input's width does not match the architecture.
    pub fn infer_batch(&self, inputs: &[&ComplexMatrix]) -> Vec<ComplexMatrix> {
        if inputs.is_empty() {
            return Vec::new();
        }
        let _span = litho_obs::span("cmlp.infer_batch");
        INFER_DISPATCHES_TOTAL.inc();
        INFER_BATCH_SIZE.record(inputs.len() as u64);
        let mut prepared = self.prepare();

        // Inputs at least one block tall already amortize the weight stream
        // within their own row blocks — run them back-to-back through the
        // shared parameters and buffers, skipping the stack/split copies
        // (which would be the dominant cost at serving scale: a 17² kernel
        // grid is 289 rows per condition). Each pass is exactly the solo
        // arithmetic, so per-slot bit-identity is immediate.
        if inputs.len() == 1 || inputs.iter().all(|input| input.rows() >= BLOCK_ROWS) {
            return inputs.iter().map(|input| prepared.infer(input)).collect();
        }

        // Sub-block inputs: stack every input's rows into one matrix and run
        // a single blocked pass over it, so short inputs share full row
        // blocks and each layer's weights stream once per block instead of
        // once per input. Every row's accumulation is independent of which
        // rows share its block, so each output row is bit-identical to the
        // row the solo pass would produce.
        let in_dim = self.architecture.input_dim;
        for input in inputs {
            assert_eq!(
                input.cols(),
                in_dim,
                "input width must match the CMLP input dimension"
            );
        }
        let total_rows: usize = inputs.iter().map(|input| input.rows()).sum();
        let mut stacked = ComplexMatrix::zeros(total_rows, in_dim);
        let mut offset = 0;
        for input in inputs {
            for r in 0..input.rows() {
                for k in 0..in_dim {
                    stacked[(offset + r, k)] = input[(r, k)];
                }
            }
            offset += input.rows();
        }
        let stacked_out = prepared.infer(&stacked);

        // Split the stacked output back into per-input matrices.
        let out_dim = self.architecture.output_dim;
        let mut offset = 0;
        inputs
            .iter()
            .map(|input| {
                let mut out = ComplexMatrix::zeros(input.rows(), out_dim);
                for r in 0..input.rows() {
                    for j in 0..out_dim {
                        out[(r, j)] = stacked_out[(offset + r, j)];
                    }
                }
                offset += input.rows();
                out
            })
            .collect()
    }

    /// Pays the row-count-independent setup of a batched dispatch — the SoA
    /// parameter split and the activation-buffer allocation — once, returning
    /// a reusable state that streams any number of inputs through the blocked
    /// kernel.
    ///
    /// This is the memory-bounded face of [`Cmlp::infer_batch`]: callers that
    /// can generate inputs one at a time (e.g. per-condition kernel-grid
    /// encodings) feed them through [`PreparedInference::infer`] without ever
    /// materializing the whole batch, keeping peak memory at one input plus
    /// the shared buffers while still sharing one dispatch's setup.
    ///
    /// Resolves the kernel backend and precision from the process-wide
    /// `NITHO_SIMD` / `NITHO_PRECISION` knobs; use [`Cmlp::prepare_with`] to
    /// pin them explicitly (tests, A/B benchmarks).
    pub fn prepare(&self) -> PreparedInference<'_> {
        self.prepare_with(simd_backend(), precision())
    }

    /// [`Cmlp::prepare`] with an explicit kernel backend and precision.
    ///
    /// Under [`Precision::F32`] the layer parameters are narrowed to f32
    /// **once** here (round-to-nearest per component) and every forward pass
    /// runs entirely in f32, widening only the final output back to f64.
    pub fn prepare_with(
        &self,
        backend: SimdBackend,
        precision: Precision,
    ) -> PreparedInference<'_> {
        let width = self
            .architecture
            .hidden_dim
            .max(self.architecture.input_dim)
            .max(self.architecture.output_dim);
        // Layer matrices are small compared to the row batches they will
        // process; splitting them to SoA (and, for f32, narrowing) here is
        // the once-per-dispatch cost the batch amortizes. The ping-pong
        // activation buffers are sized for the widest layer and shared by
        // every input streamed through this state (each row block fully
        // overwrites the region it reads, so reuse cannot leak state between
        // inputs).
        let state = match precision {
            Precision::F64 => PreparedState::F64 {
                weights: self
                    .weight_ids
                    .iter()
                    .map(|&id| soa::ComplexSoa::from_matrix(self.params.value(id)))
                    .collect(),
                biases: self
                    .bias_ids
                    .iter()
                    .map(|&id| soa::ComplexSoa::from_matrix(self.params.value(id)))
                    .collect(),
                cur_re: vec![0.0; BLOCK_ROWS * width],
                cur_im: vec![0.0; BLOCK_ROWS * width],
                next_re: vec![0.0; BLOCK_ROWS * width],
                next_im: vec![0.0; BLOCK_ROWS * width],
            },
            Precision::F32 => PreparedState::F32 {
                weights: self
                    .weight_ids
                    .iter()
                    .map(|&id| soa::ComplexSoa32::from_matrix(self.params.value(id)))
                    .collect(),
                biases: self
                    .bias_ids
                    .iter()
                    .map(|&id| soa::ComplexSoa32::from_matrix(self.params.value(id)))
                    .collect(),
                cur_re: vec![0.0; BLOCK_ROWS * width],
                cur_im: vec![0.0; BLOCK_ROWS * width],
                next_re: vec![0.0; BLOCK_ROWS * width],
                next_im: vec![0.0; BLOCK_ROWS * width],
            },
        };
        PreparedInference {
            mlp: self,
            backend,
            state,
        }
    }

    /// The blocked forward pass for one input over pre-split parameters and
    /// caller-owned activation buffers — the shared core of [`Cmlp::infer`]
    /// and [`Cmlp::infer_batch`].
    ///
    /// Under [`SimdBackend::Scalar`] the result is bit-identical to the tape
    /// evaluation (same multiply/accumulate order); under
    /// [`SimdBackend::Avx2`] FMA contraction perturbs the last bits (bounded
    /// at ≤1e-12 relative by the workspace's SIMD equivalence proptests).
    #[allow(clippy::too_many_arguments)]
    fn infer_with(
        &self,
        backend: SimdBackend,
        input: &ComplexMatrix,
        weights: &[soa::ComplexSoa],
        biases: &[soa::ComplexSoa],
        cur_re: &mut [f64],
        cur_im: &mut [f64],
        next_re: &mut [f64],
        next_im: &mut [f64],
    ) -> ComplexMatrix {
        let batch = input.rows();
        let layer_count = self.weight_ids.len();
        let mut out = ComplexMatrix::zeros(batch, self.architecture.output_dim);
        let (mut cur_re, mut cur_im) = (cur_re, cur_im);
        let (mut next_re, mut next_im) = (next_re, next_im);

        for block_start in (0..batch).step_by(BLOCK_ROWS) {
            let block_len = BLOCK_ROWS.min(batch - block_start);
            // Load the block in SoA layout.
            let in_dim = self.architecture.input_dim;
            for b in 0..block_len {
                for k in 0..in_dim {
                    let z = input[(block_start + b, k)];
                    cur_re[b * in_dim + k] = z.re;
                    cur_im[b * in_dim + k] = z.im;
                }
            }
            let mut cur_dim = in_dim;
            for layer in 0..layer_count {
                let w = &weights[layer];
                let bias = &biases[layer];
                let out_dim = w.cols();
                for b in 0..block_len {
                    let acc_re = &mut next_re[b * out_dim..(b + 1) * out_dim];
                    let acc_im = &mut next_im[b * out_dim..(b + 1) * out_dim];
                    acc_re.fill(0.0);
                    acc_im.fill(0.0);
                    // Σₖ x[b,k]·W[k,·] in ascending k — the same accumulation
                    // order as the tape's cmatmul, so under the scalar
                    // backend the layouts agree bit for bit.
                    for k in 0..cur_dim {
                        let (xr, xi) = (cur_re[b * cur_dim + k], cur_im[b * cur_dim + k]);
                        let (wr, wi) = (
                            &w.re[k * out_dim..(k + 1) * out_dim],
                            &w.im[k * out_dim..(k + 1) * out_dim],
                        );
                        soa::axpy_in_place_with(backend, xr, xi, wr, wi, acc_re, acc_im);
                    }
                    let last = layer + 1 == layer_count;
                    for j in 0..out_dim {
                        let mut re = acc_re[j] + bias.re[j];
                        let mut im = acc_im[j] + bias.im[j];
                        if !last {
                            // CReLU (Eq. (11)), matching the tape op exactly.
                            re = re.max(0.0);
                            im = im.max(0.0);
                        }
                        acc_re[j] = re;
                        acc_im[j] = im;
                    }
                }
                std::mem::swap(&mut cur_re, &mut next_re);
                std::mem::swap(&mut cur_im, &mut next_im);
                cur_dim = out_dim;
            }
            for b in 0..block_len {
                for j in 0..cur_dim {
                    out[(block_start + b, j)] = litho_math::Complex64::new(
                        cur_re[b * cur_dim + j],
                        cur_im[b * cur_dim + j],
                    );
                }
            }
        }
        out
    }

    /// The f32 twin of [`Cmlp::infer_with`]: the input is narrowed on load,
    /// every layer runs in f32 over pre-narrowed parameters, and only the
    /// final activations are widened back into the f64 output matrix. Same
    /// block structure, accumulation order, bias and CReLU placement — the
    /// only difference is the arithmetic width.
    #[allow(clippy::too_many_arguments)]
    fn infer_with_f32(
        &self,
        backend: SimdBackend,
        input: &ComplexMatrix,
        weights: &[soa::ComplexSoa32],
        biases: &[soa::ComplexSoa32],
        cur_re: &mut [f32],
        cur_im: &mut [f32],
        next_re: &mut [f32],
        next_im: &mut [f32],
    ) -> ComplexMatrix {
        let batch = input.rows();
        let layer_count = self.weight_ids.len();
        let mut out = ComplexMatrix::zeros(batch, self.architecture.output_dim);
        let (mut cur_re, mut cur_im) = (cur_re, cur_im);
        let (mut next_re, mut next_im) = (next_re, next_im);

        for block_start in (0..batch).step_by(BLOCK_ROWS) {
            let block_len = BLOCK_ROWS.min(batch - block_start);
            let in_dim = self.architecture.input_dim;
            for b in 0..block_len {
                for k in 0..in_dim {
                    let z = input[(block_start + b, k)];
                    cur_re[b * in_dim + k] = z.re as f32;
                    cur_im[b * in_dim + k] = z.im as f32;
                }
            }
            let mut cur_dim = in_dim;
            for layer in 0..layer_count {
                let w = &weights[layer];
                let bias = &biases[layer];
                let out_dim = w.cols();
                for b in 0..block_len {
                    let acc_re = &mut next_re[b * out_dim..(b + 1) * out_dim];
                    let acc_im = &mut next_im[b * out_dim..(b + 1) * out_dim];
                    acc_re.fill(0.0);
                    acc_im.fill(0.0);
                    for k in 0..cur_dim {
                        let (xr, xi) = (cur_re[b * cur_dim + k], cur_im[b * cur_dim + k]);
                        let (wr, wi) = (
                            &w.re[k * out_dim..(k + 1) * out_dim],
                            &w.im[k * out_dim..(k + 1) * out_dim],
                        );
                        soa::axpy_in_place_f32_with(backend, xr, xi, wr, wi, acc_re, acc_im);
                    }
                    let last = layer + 1 == layer_count;
                    for j in 0..out_dim {
                        let mut re = acc_re[j] + bias.re[j];
                        let mut im = acc_im[j] + bias.im[j];
                        if !last {
                            // CReLU (Eq. (11)) in f32.
                            re = re.max(0.0);
                            im = im.max(0.0);
                        }
                        acc_re[j] = re;
                        acc_im[j] = im;
                    }
                }
                std::mem::swap(&mut cur_re, &mut next_re);
                std::mem::swap(&mut cur_im, &mut next_im);
                cur_dim = out_dim;
            }
            for b in 0..block_len {
                for j in 0..cur_dim {
                    out[(block_start + b, j)] = litho_math::Complex64::new(
                        f64::from(cur_re[b * cur_dim + j]),
                        f64::from(cur_im[b * cur_dim + j]),
                    );
                }
            }
        }
        out
    }

    /// The retained tape-based frozen inference (parameters inserted as
    /// constants, forward evaluated through autodiff ops without gradients).
    /// Kept as the equivalence baseline for [`Cmlp::infer`] and as the "tape"
    /// side of the `BENCH_infer.json` comparison.
    pub fn infer_tape(&self, input: &ComplexMatrix) -> ComplexMatrix {
        let mut tape = Tape::new();
        let input_node = tape.constant(input.clone());
        let (output, _) = self.forward_frozen(&mut tape, input_node);
        tape.value(output).clone()
    }

    /// Forward pass with parameters inserted as constants (no gradients);
    /// cheaper than [`Cmlp::forward`] when only predictions are needed.
    fn forward_frozen(&self, tape: &mut Tape, input: NodeId) -> (NodeId, Vec<(ParamId, NodeId)>) {
        let mut hidden = input;
        let layer_count = self.weight_ids.len();
        for layer in 0..layer_count {
            let w = tape.constant(self.params.value(self.weight_ids[layer]).clone());
            let b = tape.constant(self.params.value(self.bias_ids[layer]).clone());
            let product = tape.matmul(hidden, w);
            let with_bias = tape.add_bias_row(product, b);
            hidden = if layer + 1 < layer_count {
                tape.crelu(with_bias)
            } else {
                with_bias
            };
        }
        (hidden, Vec::new())
    }
}

/// One dispatch's worth of shared inference state — pre-split (and, for f32,
/// pre-narrowed) SoA layer parameters and ping-pong activation buffers —
/// created by [`Cmlp::prepare`] / [`Cmlp::prepare_with`] and reused across
/// every input streamed through [`PreparedInference::infer`].
///
/// Each `infer` call runs exactly the solo [`Cmlp::infer`] arithmetic under
/// the same backend and precision (same blocked kernel, per-row zeroed
/// accumulators), so outputs are bit-identical to independent dispatches no
/// matter how many inputs share the state.
pub struct PreparedInference<'a> {
    mlp: &'a Cmlp,
    backend: SimdBackend,
    state: PreparedState,
}

/// Precision-specific half of a [`PreparedInference`]: the SoA parameter
/// split and the ping-pong activation buffers at the chosen arithmetic width.
enum PreparedState {
    F64 {
        weights: Vec<soa::ComplexSoa>,
        biases: Vec<soa::ComplexSoa>,
        cur_re: Vec<f64>,
        cur_im: Vec<f64>,
        next_re: Vec<f64>,
        next_im: Vec<f64>,
    },
    F32 {
        weights: Vec<soa::ComplexSoa32>,
        biases: Vec<soa::ComplexSoa32>,
        cur_re: Vec<f32>,
        cur_im: Vec<f32>,
        next_re: Vec<f32>,
        next_im: Vec<f32>,
    },
}

impl PreparedInference<'_> {
    /// The kernel backend this state dispatches to.
    pub fn backend(&self) -> SimdBackend {
        self.backend
    }

    /// The arithmetic precision this state runs at.
    pub fn precision(&self) -> Precision {
        match self.state {
            PreparedState::F64 { .. } => Precision::F64,
            PreparedState::F32 { .. } => Precision::F32,
        }
    }

    /// Runs the blocked forward pass on `input` through the shared state,
    /// bit-identical to a solo [`Cmlp::infer`] call under the same backend
    /// and precision.
    ///
    /// # Panics
    ///
    /// Panics if the input width does not match the architecture.
    pub fn infer(&mut self, input: &ComplexMatrix) -> ComplexMatrix {
        assert_eq!(
            input.cols(),
            self.mlp.architecture.input_dim,
            "input width must match the CMLP input dimension"
        );
        record_kernel_dispatch(self.backend, self.precision());
        match &mut self.state {
            PreparedState::F64 {
                weights,
                biases,
                cur_re,
                cur_im,
                next_re,
                next_im,
            } => self.mlp.infer_with(
                self.backend,
                input,
                weights,
                biases,
                cur_re,
                cur_im,
                next_re,
                next_im,
            ),
            PreparedState::F32 {
                weights,
                biases,
                cur_re,
                cur_im,
                next_re,
                next_im,
            } => self.mlp.infer_with_f32(
                self.backend,
                input,
                weights,
                biases,
                cur_re,
                cur_im,
                next_re,
                next_im,
            ),
        }
    }
}

impl std::fmt::Debug for PreparedInference<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedInference")
            .field("architecture", &self.mlp.architecture)
            .field("backend", &self.backend)
            .field("precision", &self.precision())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_autodiff::{check_gradients, Adam, Optimizer};
    use litho_math::Complex64;

    fn small_arch() -> CmlpArchitecture {
        CmlpArchitecture {
            input_dim: 6,
            hidden_dim: 8,
            hidden_blocks: 2,
            output_dim: 3,
        }
    }

    #[test]
    fn parameter_count_matches_architecture() {
        let arch = small_arch();
        let expected = 6 * 8 + 8 + 2 * (8 * 8 + 8) + 8 * 3 + 3;
        assert_eq!(arch.complex_parameter_count(), expected);
        let mut rng = DeterministicRng::new(1);
        let mlp = Cmlp::new(arch, &mut rng);
        assert_eq!(mlp.num_parameters(), expected * 2);
        assert_eq!(mlp.size_bytes(), expected * 2 * 4);
        assert_eq!(mlp.architecture(), arch);
    }

    #[test]
    fn same_seed_identical_weight_init() {
        // Two models built from equal-seeded generators must be identical
        // parameter-for-parameter (the workspace's reproducibility contract),
        // and a third seed must differ.
        let build = |seed: u64| Cmlp::new(small_arch(), &mut DeterministicRng::new(seed));
        let (a, b, c) = (build(1234), build(1234), build(4321));
        let flat = |m: &Cmlp| -> Vec<(u64, u64)> {
            m.params()
                .iter()
                .flat_map(|(_, _, value)| value.iter().map(|z| (z.re.to_bits(), z.im.to_bits())))
                .collect::<Vec<_>>()
        };
        assert_eq!(flat(&a), flat(&b));
        assert_ne!(flat(&a), flat(&c));
        let input =
            ComplexMatrix::from_fn(5, 6, |i, j| Complex64::new(i as f64 * 0.2, j as f64 * 0.1));
        assert_eq!(a.infer(&input), b.infer(&input));
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let mut rng = DeterministicRng::new(2);
        let mlp = Cmlp::new(small_arch(), &mut rng);
        let input = ComplexMatrix::from_fn(10, 6, |i, j| {
            Complex64::new(i as f64 * 0.1, j as f64 * 0.05)
        });
        let out_a = mlp.infer(&input);
        let out_b = mlp.infer(&input);
        assert_eq!(out_a.shape(), (10, 3));
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn tape_and_batched_inference_agree_bitwise() {
        // The scalar SoA batched path must reproduce the frozen-tape
        // evaluation bit for bit: same multiply/accumulate order, same
        // bias/CReLU ops. The backend is pinned to Scalar because AVX2's FMA
        // contraction legitimately perturbs the last bits. Odd batch sizes
        // cross the row-block boundary.
        let mut rng = DeterministicRng::new(11);
        let mlp = Cmlp::new(small_arch(), &mut rng);
        let mut prepared = mlp.prepare_with(SimdBackend::Scalar, Precision::F64);
        for &batch in &[1usize, 5, 64, 81, 130] {
            let input = ComplexMatrix::from_fn(batch, 6, |i, j| {
                Complex64::new(
                    ((i * 7 + j) as f64 * 0.13).sin(),
                    ((i + 3 * j) as f64 * 0.21).cos() - 0.5,
                )
            });
            let batched = prepared.infer(&input);
            let taped = mlp.infer_tape(&input);
            assert_eq!(batched.shape(), taped.shape());
            for (a, b) in batched.iter().zip(taped.iter()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "batch={batch}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "batch={batch}");
            }
        }
    }

    #[test]
    fn avx2_inference_matches_scalar_within_fma_tolerance() {
        // The AVX2 kernel reorders nothing and fuses each multiply-add, so
        // it may differ from the pinned scalar reference only in the last
        // bits. 1e-12 absolute is orders of magnitude above any observed
        // FMA perturbation at these magnitudes while still catching a lane
        // or tail bug outright.
        if !litho_math::simd::avx2_available() {
            return;
        }
        let mut rng = DeterministicRng::new(11);
        let mlp = Cmlp::new(small_arch(), &mut rng);
        let mut scalar = mlp.prepare_with(SimdBackend::Scalar, Precision::F64);
        let mut avx2 = mlp.prepare_with(SimdBackend::Avx2, Precision::F64);
        for &batch in &[1usize, 5, 64, 81, 130] {
            let input = ComplexMatrix::from_fn(batch, 6, |i, j| {
                Complex64::new(
                    ((i * 7 + j) as f64 * 0.13).sin(),
                    ((i + 3 * j) as f64 * 0.21).cos() - 0.5,
                )
            });
            let a = scalar.infer(&input);
            let b = avx2.infer(&input);
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((*x - *y).abs() < 1e-12, "batch={batch}: {x:?} vs {y:?}");
            }
        }
    }

    #[test]
    fn f32_inference_tracks_f64_closely() {
        // The reduced-precision path narrows parameters and activations to
        // f32; on a small well-conditioned network the widened output must
        // track the f64 reference to roughly f32 epsilon times the
        // accumulation depth. The serving-accuracy bar (PSNR/mIOU on real
        // aerials) lives in the integration suite; this pins the kernel
        // itself.
        let mut rng = DeterministicRng::new(11);
        let mlp = Cmlp::new(small_arch(), &mut rng);
        for backend in [SimdBackend::Scalar, SimdBackend::Avx2] {
            if backend == SimdBackend::Avx2 && !litho_math::simd::avx2_available() {
                continue;
            }
            let mut f64_state = mlp.prepare_with(backend, Precision::F64);
            let mut f32_state = mlp.prepare_with(backend, Precision::F32);
            assert_eq!(f32_state.precision(), Precision::F32);
            assert_eq!(f32_state.backend(), backend);
            let input = ComplexMatrix::from_fn(81, 6, |i, j| {
                Complex64::new(
                    ((i * 7 + j) as f64 * 0.13).sin(),
                    ((i + 3 * j) as f64 * 0.21).cos() - 0.5,
                )
            });
            let wide = f64_state.infer(&input);
            let narrow = f32_state.infer(&input);
            assert_eq!(wide.shape(), narrow.shape());
            let mut max_abs = 0.0f64;
            for (a, b) in wide.iter().zip(narrow.iter()) {
                max_abs = max_abs.max((*a - *b).abs());
            }
            assert!(
                max_abs < 1e-4,
                "{backend:?}: f32 drifted {max_abs:.3e} from f64"
            );
            assert!(max_abs > 0.0, "f32 path suspiciously bit-identical to f64");
        }
    }

    #[test]
    fn f32_dispatches_are_counted() {
        let mut rng = DeterministicRng::new(11);
        let mlp = Cmlp::new(small_arch(), &mut rng);
        let input = ComplexMatrix::from_fn(4, 6, |i, j| Complex64::new(i as f64, j as f64));
        let before = total_infer_f32_dispatches();
        let _ = mlp
            .prepare_with(SimdBackend::Scalar, Precision::F32)
            .infer(&input);
        // Strictly-greater because other tests in this binary may run f32
        // dispatches concurrently; the counter only needs to be monotone
        // and attributed.
        assert!(total_infer_f32_dispatches() > before);
    }

    #[test]
    fn infer_batch_is_bit_identical_for_any_composition() {
        // The serving-tier contract: stacking inputs from different requests
        // into one dispatch must not perturb any output bit, no matter how
        // the batch is composed or ordered. Row counts straddle the 64-row
        // block boundary on purpose.
        let mut rng = DeterministicRng::new(17);
        let mlp = Cmlp::new(small_arch(), &mut rng);
        let inputs: Vec<ComplexMatrix> = [1usize, 5, 64, 81, 130]
            .iter()
            .map(|&rows| {
                ComplexMatrix::from_fn(rows, 6, |i, j| {
                    Complex64::new(
                        ((i * 11 + j * 3 + rows) as f64 * 0.07).sin(),
                        ((i + 5 * j + rows) as f64 * 0.19).cos() - 0.5,
                    )
                })
            })
            .collect();
        let solo: Vec<ComplexMatrix> = inputs.iter().map(|m| mlp.infer(m)).collect();

        let compositions: Vec<Vec<usize>> = vec![
            vec![0],
            vec![1, 2],
            vec![3, 0, 4],
            vec![4, 3, 2, 1, 0],
            vec![0, 0, 1], // the same input may appear twice in one dispatch
            vec![2, 3, 4], // all block-tall: exercises the copy-free path
        ];
        for combo in &compositions {
            let stacked: Vec<&ComplexMatrix> = combo.iter().map(|&i| &inputs[i]).collect();
            let outs = mlp.infer_batch(&stacked);
            assert_eq!(outs.len(), combo.len());
            for (slot, &idx) in combo.iter().enumerate() {
                let (got, want) = (&outs[slot], &solo[idx]);
                assert_eq!(got.shape(), want.shape());
                for (a, b) in got.iter().zip(want.iter()) {
                    assert_eq!(a.re.to_bits(), b.re.to_bits(), "combo={combo:?} idx={idx}");
                    assert_eq!(a.im.to_bits(), b.im.to_bits(), "combo={combo:?} idx={idx}");
                }
            }
        }
        assert!(mlp.infer_batch(&[]).is_empty());
    }

    #[test]
    fn forward_and_infer_agree() {
        let mut rng = DeterministicRng::new(3);
        let mlp = Cmlp::new(small_arch(), &mut rng);
        let input = ComplexMatrix::from_fn(4, 6, |i, j| Complex64::new((i + j) as f64 * 0.1, 0.2));
        let mut tape = Tape::new();
        let node = tape.constant(input.clone());
        let (out, leaves) = mlp.forward(&mut tape, node);
        assert_eq!(leaves.len(), 2 * (2 + 2)); // (hidden_blocks + input + output) layers × (w, b)
        let from_tape = tape.value(out).clone();
        let from_infer = mlp.infer(&input);
        for i in 0..4 {
            for j in 0..3 {
                assert!((from_tape[(i, j)] - from_infer[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gradients_flow_to_every_parameter() {
        let mut rng = DeterministicRng::new(4);
        let mlp = Cmlp::new(small_arch(), &mut rng);
        let input =
            ComplexMatrix::from_fn(5, 6, |i, j| Complex64::new(0.3 * i as f64, -0.2 * j as f64));
        let mut tape = Tape::new();
        let node = tape.constant(input);
        let (out, leaves) = mlp.forward(&mut tape, node);
        let sq = tape.abs_sq(out);
        let loss = tape.mean_real(sq);
        tape.backward(loss);
        for (param_id, node_id) in &leaves {
            let grad = tape.grad(*node_id);
            assert!(
                grad.is_some(),
                "missing gradient for {}",
                mlp.params().name(*param_id)
            );
        }
    }

    #[test]
    fn cmlp_gradcheck_against_finite_differences() {
        // Check the full CLinear/CReLU stack numerically on a tiny network.
        let arch = CmlpArchitecture {
            input_dim: 3,
            hidden_dim: 4,
            hidden_blocks: 1,
            output_dim: 2,
        };
        let mut rng = DeterministicRng::new(5);
        let mlp = Cmlp::new(arch, &mut rng);
        let input = ComplexMatrix::from_fn(3, 3, |i, j| {
            Complex64::new(0.4 * i as f64 - 0.1, 0.3 * j as f64)
        });

        // Collect parameter values as gradcheck inputs, then rebuild the same
        // network topology inside the closure from the provided leaves.
        let values: Vec<ComplexMatrix> = mlp.params().iter().map(|(_, _, v)| v.clone()).collect();
        check_gradients(
            &values,
            move |tape, ids| {
                let x = tape.constant(input.clone());
                let h1 = tape.matmul(x, ids[0]);
                let h1b = tape.add_bias_row(h1, ids[1]);
                let a1 = tape.crelu(h1b);
                let h2 = tape.matmul(a1, ids[2]);
                let h2b = tape.add_bias_row(h2, ids[3]);
                let a2 = tape.crelu(h2b);
                let h3 = tape.matmul(a2, ids[4]);
                let out = tape.add_bias_row(h3, ids[5]);
                let sq = tape.abs_sq(out);
                tape.mean_real(sq)
            },
            1e-5,
            1e-4,
        )
        .expect("CMLP gradients must match finite differences");
    }

    #[test]
    fn cmlp_can_fit_a_complex_target() {
        // Regression smoke test: fit a small random complex target from a
        // fixed input, which exercises forward + backward + Adam end to end.
        let arch = CmlpArchitecture {
            input_dim: 4,
            hidden_dim: 16,
            hidden_blocks: 1,
            output_dim: 2,
        };
        let mut rng = DeterministicRng::new(6);
        let mut mlp = Cmlp::new(arch, &mut rng);
        let input = ComplexMatrix::from_fn(8, 4, |i, j| {
            Complex64::new(
                (i as f64 * 0.7 + j as f64).sin(),
                (i as f64 - j as f64 * 0.3).cos(),
            )
        });
        let target = ComplexMatrix::from_fn(8, 2, |i, j| {
            Complex64::new(
                (i as f64 * 0.5 + j as f64).cos() * 0.5,
                (i as f64 * 0.2).sin() * 0.5,
            )
        });

        let mut adam = Adam::new(5e-3);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..400 {
            let mut tape = Tape::new();
            let x = tape.constant(input.clone());
            let (out, leaves) = mlp.forward(&mut tape, x);
            let t = tape.constant(target.clone());
            let diff = tape.sub(out, t);
            let sq = tape.abs_sq(diff);
            let loss = tape.mean_real(sq);
            tape.backward(loss);
            last_loss = tape.value(loss)[(0, 0)].re;
            first_loss.get_or_insert(last_loss);
            let grads: Vec<_> = leaves
                .iter()
                .filter_map(|(pid, nid)| tape.grad(*nid).map(|g| (*pid, g.clone())))
                .collect();
            adam.step(mlp.params_mut(), &grads);
        }
        let first = first_loss.expect("at least one step");
        assert!(
            last_loss < 0.05 * first,
            "training failed to reduce the loss: {first} → {last_loss}"
        );
    }

    #[test]
    #[should_panic(expected = "input width")]
    fn wrong_input_width_panics() {
        let mut rng = DeterministicRng::new(7);
        let mlp = Cmlp::new(small_arch(), &mut rng);
        let mut tape = Tape::new();
        let bad = tape.constant(ComplexMatrix::zeros(2, 5));
        let _ = mlp.forward(&mut tape, bad);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_panics() {
        let arch = CmlpArchitecture {
            input_dim: 0,
            hidden_dim: 4,
            hidden_blocks: 1,
            output_dim: 2,
        };
        let _ = Cmlp::new(arch, &mut DeterministicRng::new(0));
    }
}
