//! Positional encodings for the kernel-coordinate inputs.
//!
//! A plain MLP struggles to represent the high-frequency structure of optical
//! kernels from raw 2-D coordinates. The paper compares three options
//! (Table V): no encoding, NeRF's axis-aligned sinusoidal encoding
//! (Eq. (14)), and the complex Gaussian random-Fourier-feature (RFF) mapping
//! it ultimately adopts (Eq. (15)).
//!
//! For process-window conditioning, [`ConditionEncoding`] extends the input
//! with Fourier features of the normalized `(defocus, dose)` perturbation, so
//! one neural field regresses the kernels *as a function of the process
//! condition* (cf. Fourier-feature networks for perturbed optical fields).

use litho_math::{Complex64, ComplexMatrix, DeterministicRng, Matrix, RealMatrix};
use litho_optics::ProcessCondition;

/// A positional encoding applied to normalized kernel coordinates.
#[derive(Debug, Clone, PartialEq)]
pub enum PositionalEncoding {
    /// Pass the raw `(x, y)` coordinates through (the paper's "None" ablation
    /// row in Table V).
    None,
    /// NeRF's axis-aligned encoding, Eq. (14):
    /// `[sin(2⁰πv), cos(2⁰πv), …, sin(2^{L−1}πv), cos(2^{L−1}πv)]` applied to
    /// each coordinate separately.
    Nerf {
        /// Number of frequency octaves `L`.
        levels: usize,
    },
    /// Gaussian random Fourier features, Eq. (15):
    /// `[cos(2πBv)·(1+j), sin(2πBv)·(1+j)]` with `B ∈ R^{l×2}`,
    /// `B_ij ~ N(0, σ²)`. This is the encoding Nitho uses.
    GaussianRff {
        /// Number of random frequencies `l`.
        features: usize,
        /// Standard deviation σ of the frequency matrix entries.
        sigma: f64,
        /// Seed for the (fixed) random frequency matrix.
        seed: u64,
    },
}

impl Default for PositionalEncoding {
    fn default() -> Self {
        PositionalEncoding::GaussianRff {
            features: 96,
            sigma: 3.0,
            seed: 0x4e49_5448,
        }
    }
}

impl PositionalEncoding {
    /// Output dimensionality of the encoding (number of CMLP input features).
    pub fn output_dim(&self) -> usize {
        match *self {
            PositionalEncoding::None => 2,
            PositionalEncoding::Nerf { levels } => 4 * levels,
            PositionalEncoding::GaussianRff { features, .. } => 2 * features,
        }
    }

    /// Short label used in ablation tables.
    pub fn label(&self) -> &'static str {
        match self {
            PositionalEncoding::None => "None",
            PositionalEncoding::Nerf { .. } => "NeRF PE",
            PositionalEncoding::GaussianRff { .. } => "Gaussian RFF",
        }
    }

    /// Encodes the full kernel coordinate grid: every `(row, col)` of an
    /// `rows × cols` kernel, with coordinates normalized to `[0, 1]`, flattened
    /// row-major into an `(rows·cols) × output_dim` complex matrix (the CMLP
    /// input of Algorithm 1, lines 2–3).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn encode_grid(&self, rows: usize, cols: usize) -> ComplexMatrix {
        assert!(rows > 0 && cols > 0, "kernel grid must be non-empty");
        let coords = grid_coordinates(rows, cols);
        self.encode(&coords)
    }

    /// Encodes an arbitrary list of normalized 2-D coordinates into an
    /// `N × output_dim` complex matrix.
    pub fn encode(&self, coords: &[(f64, f64)]) -> ComplexMatrix {
        match *self {
            PositionalEncoding::None => Matrix::from_fn(coords.len(), 2, |i, j| {
                let (x, y) = coords[i];
                Complex64::from_real(if j == 0 { x } else { y })
            }),
            PositionalEncoding::Nerf { levels } => {
                assert!(levels > 0, "NeRF encoding needs at least one level");
                Matrix::from_fn(coords.len(), 4 * levels, |i, j| {
                    let (x, y) = coords[i];
                    // Feature layout per level: [sin x, cos x, sin y, cos y].
                    let level = j / 4;
                    let slot = j % 4;
                    let v = if slot < 2 { x } else { y };
                    let angle = (1u64 << level) as f64 * std::f64::consts::PI * v;
                    let value = if slot % 2 == 0 {
                        angle.sin()
                    } else {
                        angle.cos()
                    };
                    Complex64::from_real(value)
                })
            }
            PositionalEncoding::GaussianRff {
                features,
                sigma,
                seed,
            } => {
                assert!(features > 0, "RFF encoding needs at least one feature");
                assert!(sigma > 0.0, "RFF sigma must be positive");
                let frequencies = rff_frequencies(features, sigma, seed);
                let one_plus_j = Complex64::new(1.0, 1.0);
                Matrix::from_fn(coords.len(), 2 * features, |i, j| {
                    let (x, y) = coords[i];
                    let feature = j % features;
                    let phase = 2.0
                        * std::f64::consts::PI
                        * (frequencies[(feature, 0)] * x + frequencies[(feature, 1)] * y);
                    let value = if j < features {
                        phase.cos()
                    } else {
                        phase.sin()
                    };
                    one_plus_j.scale(value)
                })
            }
        }
    }
}

/// Fourier-feature encoding of a process condition `(defocus, dose)`,
/// appended to every row of the spatial encoding when a model is
/// process-window conditioned.
///
/// The condition is first normalized — defocus by `focus_span_nm`, dose as
/// `(dose − 1) / dose_span` — so both channels live on comparable `≈[−1, 1]`
/// scales over the intended process window, then mapped through the same
/// complex Gaussian RFF form as the spatial coordinates (Eq. (15)):
/// `[cos(2πBc)·(1+j), sin(2πBc)·(1+j)]` with `B ∈ R^{features × 2}`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConditionEncoding {
    /// Defocus normalization span in nanometres (`f_norm = Δz / span`).
    pub focus_span_nm: f64,
    /// Dose normalization span (`d_norm = (d − 1) / span`).
    pub dose_span: f64,
    /// Number of random condition frequencies.
    pub features: usize,
    /// Standard deviation of the frequency-matrix entries.
    pub sigma: f64,
    /// Seed for the (fixed) condition frequency matrix.
    pub seed: u64,
}

impl Default for ConditionEncoding {
    fn default() -> Self {
        Self {
            focus_span_nm: 100.0,
            dose_span: 0.1,
            features: 8,
            sigma: 1.0,
            seed: 0x636f_6e64, // "cond"
        }
    }
}

impl ConditionEncoding {
    /// Number of complex features appended per input row.
    pub fn output_dim(&self) -> usize {
        2 * self.features
    }

    /// Validates the encoding parameters.
    ///
    /// # Panics
    ///
    /// Panics if any span, the feature count or sigma is not positive.
    pub fn validate(&self) {
        assert!(
            self.focus_span_nm > 0.0,
            "condition focus span must be positive"
        );
        assert!(self.dose_span > 0.0, "condition dose span must be positive");
        assert!(
            self.features > 0,
            "condition encoding needs at least one feature"
        );
        assert!(self.sigma > 0.0, "condition RFF sigma must be positive");
    }

    /// The normalized `(focus, dose)` channels of a condition.
    pub fn normalized(&self, condition: &ProcessCondition) -> (f64, f64) {
        (
            condition.defocus_nm / self.focus_span_nm,
            (condition.dose - 1.0) / self.dose_span,
        )
    }

    /// Encodes one condition into its `output_dim` complex features.
    ///
    /// # Panics
    ///
    /// Panics if the encoding parameters or the condition are invalid.
    pub fn encode(&self, condition: &ProcessCondition) -> Vec<Complex64> {
        self.validate();
        condition.validate();
        let (f, d) = self.normalized(condition);
        let frequencies = rff_frequencies(self.features, self.sigma, self.seed);
        let one_plus_j = Complex64::new(1.0, 1.0);
        let mut features = Vec::with_capacity(self.output_dim());
        for slot in 0..self.output_dim() {
            let feature = slot % self.features;
            let phase = 2.0
                * std::f64::consts::PI
                * (frequencies[(feature, 0)] * f + frequencies[(feature, 1)] * d);
            let value = if slot < self.features {
                phase.cos()
            } else {
                phase.sin()
            };
            features.push(one_plus_j.scale(value));
        }
        features
    }
}

/// The normalized coordinates of every kernel-grid point, flattened row-major
/// (Algorithm 1, line 2: `[(0,0), …, (0,m), …, (n,m)]ᵀ`, normalized to
/// `[0, 1]`).
pub fn grid_coordinates(rows: usize, cols: usize) -> Vec<(f64, f64)> {
    let norm = |i: usize, n: usize| {
        if n <= 1 {
            0.0
        } else {
            i as f64 / (n - 1) as f64
        }
    };
    let mut coords = Vec::with_capacity(rows * cols);
    for i in 0..rows {
        for j in 0..cols {
            coords.push((norm(i, rows), norm(j, cols)));
        }
    }
    coords
}

/// The fixed Gaussian frequency matrix `B ∈ R^{features × 2}` of Eq. (15).
fn rff_frequencies(features: usize, sigma: f64, seed: u64) -> RealMatrix {
    let mut rng = DeterministicRng::new(seed);
    RealMatrix::from_fn(features, 2, |_, _| rng.normal(0.0, sigma))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn output_dims_per_encoding() {
        assert_eq!(PositionalEncoding::None.output_dim(), 2);
        assert_eq!(PositionalEncoding::Nerf { levels: 6 }.output_dim(), 24);
        let rff = PositionalEncoding::GaussianRff {
            features: 32,
            sigma: 1.0,
            seed: 1,
        };
        assert_eq!(rff.output_dim(), 64);
        assert_eq!(rff.label(), "Gaussian RFF");
        assert_eq!(PositionalEncoding::default().label(), "Gaussian RFF");
    }

    #[test]
    fn grid_coordinates_are_normalized_row_major() {
        let coords = grid_coordinates(3, 2);
        assert_eq!(coords.len(), 6);
        assert_eq!(coords[0], (0.0, 0.0));
        assert_eq!(coords[1], (0.0, 1.0));
        assert_eq!(coords[5], (1.0, 1.0));
        // Degenerate single row/column maps to 0.
        assert_eq!(grid_coordinates(1, 1)[0], (0.0, 0.0));
    }

    #[test]
    fn none_encoding_passes_coordinates_through() {
        let enc = PositionalEncoding::None;
        let out = enc.encode(&[(0.25, 0.75)]);
        assert_eq!(out.shape(), (1, 2));
        assert_eq!(out[(0, 0)], Complex64::from_real(0.25));
        assert_eq!(out[(0, 1)], Complex64::from_real(0.75));
    }

    #[test]
    fn nerf_encoding_matches_formula() {
        let enc = PositionalEncoding::Nerf { levels: 2 };
        let x = 0.3;
        let y = 0.6;
        let out = enc.encode(&[(x, y)]);
        assert_eq!(out.shape(), (1, 8));
        let pi = std::f64::consts::PI;
        assert!((out[(0, 0)].re - (pi * x).sin()).abs() < 1e-12);
        assert!((out[(0, 1)].re - (pi * x).cos()).abs() < 1e-12);
        assert!((out[(0, 2)].re - (pi * y).sin()).abs() < 1e-12);
        assert!((out[(0, 3)].re - (pi * y).cos()).abs() < 1e-12);
        assert!((out[(0, 4)].re - (2.0 * pi * x).sin()).abs() < 1e-12);
        assert!((out[(0, 7)].re - (2.0 * pi * y).cos()).abs() < 1e-12);
        // NeRF encoding is purely real.
        assert!(out.iter().all(|z| z.im == 0.0));
    }

    #[test]
    fn rff_encoding_is_complex_and_bounded() {
        let enc = PositionalEncoding::GaussianRff {
            features: 16,
            sigma: 2.0,
            seed: 3,
        };
        let out = enc.encode_grid(5, 5);
        assert_eq!(out.shape(), (25, 32));
        for z in out.iter() {
            // Every entry is (1 + j)·cos or (1 + j)·sin, so |re| = |im| ≤ 1.
            assert!((z.re - z.im).abs() < 1e-12);
            assert!(z.re.abs() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn rff_encoding_is_deterministic_in_seed() {
        let make = |seed| PositionalEncoding::GaussianRff {
            features: 8,
            sigma: 1.5,
            seed,
        };
        let a = make(7).encode_grid(4, 4);
        let b = make(7).encode_grid(4, 4);
        let c = make(8).encode_grid(4, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rff_separates_nearby_coordinates() {
        // The whole point of the encoding: nearby coordinates get distant
        // embeddings, enabling high-frequency regression.
        let enc = PositionalEncoding::default();
        let out = enc.encode(&[(0.50, 0.50), (0.52, 0.50)]);
        let mut distance = 0.0;
        for j in 0..out.cols() {
            distance += (out[(0, j)] - out[(1, j)]).abs_sq();
        }
        let raw_distance: f64 = 0.02 * 0.02;
        assert!(distance.sqrt() > 10.0 * raw_distance.sqrt());
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_level_nerf_panics() {
        let _ = PositionalEncoding::Nerf { levels: 0 }.encode(&[(0.0, 0.0)]);
    }

    #[test]
    fn condition_encoding_normalizes_and_is_deterministic() {
        let enc = ConditionEncoding::default();
        enc.validate();
        assert_eq!(enc.output_dim(), 16);
        let condition = ProcessCondition::new(50.0, 1.05);
        let (f, d) = enc.normalized(&condition);
        assert!((f - 0.5).abs() < 1e-12);
        assert!((d - 0.5).abs() < 1e-12);
        let a = enc.encode(&condition);
        let b = enc.encode(&condition);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        // Every feature has the (1+j)·cos/sin shape of Eq. (15).
        for z in &a {
            assert!((z.re - z.im).abs() < 1e-12);
            assert!(z.re.abs() <= 1.0 + 1e-12);
        }
        // A different condition maps to different features.
        let c = enc.encode(&ProcessCondition::new(-50.0, 0.95));
        assert_ne!(a, c);
        // The nominal condition is the coordinate origin of the encoding:
        // cos features are exactly (1+j), sin features exactly 0.
        let nominal = enc.encode(&ProcessCondition::nominal());
        for (slot, z) in nominal.iter().enumerate() {
            if slot < enc.features {
                assert!((z.re - 1.0).abs() < 1e-12);
            } else {
                assert!(z.re.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn condition_encoding_separates_nearby_conditions() {
        let enc = ConditionEncoding {
            features: 16,
            sigma: 2.0,
            ..ConditionEncoding::default()
        };
        let a = enc.encode(&ProcessCondition::new(0.0, 1.0));
        let b = enc.encode(&ProcessCondition::new(10.0, 1.0));
        let distance: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (*x - *y).abs_sq())
            .sum::<f64>()
            .sqrt();
        assert!(distance > 0.1, "distance {distance}");
    }

    #[test]
    #[should_panic(expected = "focus span must be positive")]
    fn invalid_condition_span_panics() {
        let enc = ConditionEncoding {
            focus_span_nm: 0.0,
            ..ConditionEncoding::default()
        };
        let _ = enc.encode(&ProcessCondition::nominal());
    }

    proptest! {
        #[test]
        fn prop_encodings_have_declared_dims(rows in 1usize..6, cols in 1usize..6) {
            for enc in [
                PositionalEncoding::None,
                PositionalEncoding::Nerf { levels: 3 },
                PositionalEncoding::GaussianRff { features: 5, sigma: 1.0, seed: 0 },
            ] {
                let out = enc.encode_grid(rows, cols);
                prop_assert_eq!(out.shape(), (rows * cols, enc.output_dim()));
                prop_assert!(out.iter().all(|z| z.is_finite()));
            }
        }
    }
}
