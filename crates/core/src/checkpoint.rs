//! Versioned `NITHOCKPT` model checkpoints.
//!
//! A raw parameter dump (`NITHOPRM`, see `litho_autodiff::ParamStore`) is
//! unsafe to serve from: loading weights into a model with different optics
//! or hyper-parameters silently mispredicts. A checkpoint therefore prefixes
//! the parameter stream with a header binding it to the configuration it was
//! trained for:
//!
//! ```text
//! "NITHOCKPT"  9 bytes   magic
//! version      u32 le    format version (currently 1)
//! fingerprint  u64 le    FNV-1a of the canonical NithoConfig + OpticalConfig
//! <NITHOPRM parameter stream>
//! ```
//!
//! Loading validates the version and the fingerprint against the target
//! model and fails with `InvalidData` on mismatch. Legacy `NITHOPRM` files
//! (written before the header existed) still load, with a warning, so old
//! experiments stay reproducible.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use litho_autodiff::ParamStore;
use litho_optics::OpticalConfig;

use crate::training::NithoConfig;

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

const CHECKPOINT_MAGIC: &[u8; 9] = b"NITHOCKPT";
const LEGACY_MAGIC: &[u8; 8] = b"NITHOPRM";
/// Magic + version + fingerprint.
const HEADER_BYTES: u64 = 9 + 4 + 8;

/// Header of a checkpoint file, as read by [`checkpoint_info`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// Format version (0 for legacy `NITHOPRM` files).
    pub version: u32,
    /// Configuration fingerprint (0 for legacy files).
    pub fingerprint: u64,
    /// `true` when the file is a headerless legacy parameter dump.
    pub legacy: bool,
}

/// Fingerprint binding a checkpoint to its model + optics configuration:
/// FNV-1a over the fields that determine what the saved weights *mean* —
/// the network architecture and positional encoding (input/output
/// semantics) and the optical system the kernels were regressed for.
/// Training-only knobs (epochs, batch size, learning rate, shuffle seed,
/// training resolution) are deliberately excluded, so the documented
/// `NITHO_EPOCHS`-style scaling knobs never invalidate an
/// otherwise-compatible checkpoint. `resist_threshold` and the rigorous
/// engine's `kernel_count` are serving-time choices, not weight semantics,
/// and are excluded for the same reason.
pub fn config_fingerprint(config: &NithoConfig, optics: &OpticalConfig) -> u64 {
    let mut canonical = format!(
        "arch:{:?}/{}/{}/{}|enc:{:?}|optics:{}/{}/{:?}/{}/{}/{}",
        config.kernel_side,
        config.kernel_count,
        config.hidden_dim,
        config.hidden_blocks,
        config.encoding,
        optics.wavelength_nm,
        optics.numerical_aperture,
        optics.source,
        optics.defocus_nm,
        optics.tile_px,
        optics.pixel_nm,
    );
    // Process-window conditioning changes the network's input semantics, so
    // it is part of the fingerprint — but only when present, so every
    // pre-conditioning nominal checkpoint keeps its original fingerprint and
    // still loads (as nominal-only) without retraining.
    if let Some(condition) = &config.condition {
        canonical.push_str(&format!("|cond:{condition:?}"));
    }
    fnv1a(canonical.as_bytes())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn invalid_data(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Reads just the header of a checkpoint file.
///
/// # Errors
///
/// `InvalidData` when the file is neither a `NITHOCKPT` checkpoint nor a
/// legacy `NITHOPRM` dump; otherwise any I/O error.
pub fn checkpoint_info(path: &Path) -> io::Result<CheckpointInfo> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic == LEGACY_MAGIC {
        return Ok(CheckpointInfo {
            version: 0,
            fingerprint: 0,
            legacy: true,
        });
    }
    finish_header(&mut r, &magic, path)
}

/// Consumes the tail of the `NITHOCKPT` header after the first 8 magic bytes.
fn finish_header<R: Read>(r: &mut R, first8: &[u8; 8], path: &Path) -> io::Result<CheckpointInfo> {
    let mut ninth = [0u8; 1];
    if first8 != &CHECKPOINT_MAGIC[..8]
        || r.read_exact(&mut ninth).is_err()
        || ninth[0] != CHECKPOINT_MAGIC[8]
    {
        return Err(invalid_data(format!(
            "{} is not a Nitho checkpoint or parameter file",
            path.display()
        )));
    }
    let mut version = [0u8; 4];
    r.read_exact(&mut version)?;
    let mut fingerprint = [0u8; 8];
    r.read_exact(&mut fingerprint)?;
    Ok(CheckpointInfo {
        version: u32::from_le_bytes(version),
        fingerprint: u64::from_le_bytes(fingerprint),
        legacy: false,
    })
}

/// Writes a versioned checkpoint: header + parameter stream.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub(crate) fn save(path: &Path, fingerprint: u64, params: &ParamStore) -> io::Result<()> {
    // Write-then-fsync-then-rename so a crash or full disk mid-save never
    // leaves a truncated checkpoint at the final path: the flush pushes the
    // buffered stream to the kernel, the fsync pushes it to the device
    // *before* the rename publishes the file, and the directory fsync
    // (best-effort — not every filesystem supports it) persists the rename
    // itself. Without the fsync a power cut after the rename could surface a
    // complete-looking file with torn contents.
    let tmp = path.with_extension("ckpt.tmp");
    {
        let mut w = BufWriter::new(File::create(&tmp)?);
        w.write_all(CHECKPOINT_MAGIC)?;
        w.write_all(&CHECKPOINT_VERSION.to_le_bytes())?;
        w.write_all(&fingerprint.to_le_bytes())?;
        params.write_to(&mut w)?;
        w.flush()?;
        w.get_ref().sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path
        .parent()
        .filter(|parent| !parent.as_os_str().is_empty())
    {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Loads a checkpoint, validating version and fingerprint; legacy
/// `NITHOPRM` files load with a warning (no fingerprint to check).
///
/// # Errors
///
/// `InvalidData` on an unknown format, an unsupported version, or a
/// fingerprint that does not match `expected_fingerprint`.
pub(crate) fn load(path: &Path, expected_fingerprint: u64) -> io::Result<ParamStore> {
    let file_len = std::fs::metadata(path)?.len();
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic == LEGACY_MAGIC {
        eprintln!(
            "warning: {} is a legacy NITHOPRM parameter file with no config \
             fingerprint; loading without compatibility checks",
            path.display()
        );
        // Replay the already-consumed magic so the parameter reader sees the
        // full stream.
        let mut replay = io::Cursor::new(magic).chain(r);
        return ParamStore::read_from(&mut replay, file_len);
    }
    let info = finish_header(&mut r, &magic, path)?;
    if info.version == 0 || info.version > CHECKPOINT_VERSION {
        return Err(invalid_data(format!(
            "unsupported checkpoint version {} (this build reads <= {})",
            info.version, CHECKPOINT_VERSION
        )));
    }
    if info.fingerprint != expected_fingerprint {
        return Err(invalid_data(format!(
            "checkpoint fingerprint {:#018x} does not match the target model's \
             configuration ({expected_fingerprint:#018x}): it was saved for \
             different optics or hyper-parameters",
            info.fingerprint
        )));
    }
    ParamStore::read_from(&mut r, file_len - HEADER_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_tracks_semantic_fields_only() {
        let optics = OpticalConfig::default();
        let config = NithoConfig::default();
        let base = config_fingerprint(&config, &optics);
        assert_eq!(base, config_fingerprint(&config, &optics));

        // Architecture and optics changes invalidate checkpoints…
        let other_config = NithoConfig {
            hidden_dim: config.hidden_dim + 1,
            ..config.clone()
        };
        assert_ne!(base, config_fingerprint(&other_config, &optics));
        let other_optics = OpticalConfig {
            defocus_nm: 25.0,
            ..optics.clone()
        };
        assert_ne!(base, config_fingerprint(&config, &other_optics));

        // …but training-only and serving-time knobs must not: the NITHO_*
        // scale knobs would otherwise reject every checkpoint they didn't
        // themselves write.
        let retuned = NithoConfig {
            epochs: 5,
            batch_size: 2,
            learning_rate: 9e-3,
            training_resolution: Some(32),
            seed: 7,
            ..config.clone()
        };
        assert_eq!(base, config_fingerprint(&retuned, &optics));
        let rethresholded = OpticalConfig {
            resist_threshold: 0.3,
            kernel_count: 60,
            ..optics.clone()
        };
        assert_eq!(base, config_fingerprint(&config, &rethresholded));
    }

    #[test]
    fn conditioning_changes_the_fingerprint_but_none_preserves_it() {
        use crate::encoding::ConditionEncoding;
        let optics = OpticalConfig::default();
        let nominal = NithoConfig::default();
        assert!(nominal.condition.is_none());
        let base = config_fingerprint(&nominal, &optics);

        // A conditioned model is a different network (extra inputs): its
        // checkpoints must never load into a nominal model or vice versa.
        let conditioned = NithoConfig {
            condition: Some(ConditionEncoding::default()),
            ..nominal.clone()
        };
        let conditioned_fp = config_fingerprint(&conditioned, &optics);
        assert_ne!(base, conditioned_fp);

        // Different conditioning spans are different fields too.
        let wider = NithoConfig {
            condition: Some(ConditionEncoding {
                focus_span_nm: 200.0,
                ..ConditionEncoding::default()
            }),
            ..nominal
        };
        assert_ne!(conditioned_fp, config_fingerprint(&wider, &optics));
    }

    #[test]
    fn unknown_magic_is_rejected() {
        let dir = std::env::temp_dir().join("nitho_ckpt_magic_test");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("garbage.ckpt");
        std::fs::write(&path, b"GARBAGE!!data").expect("write");
        assert!(checkpoint_info(&path).is_err());
        assert!(load(&path, 0).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
