//! The Nitho lithography model: kernel-dimension design, the forward training
//! procedure of Algorithm 1, stored-kernel fast lithography and evaluation.

use std::path::Path;

use litho_autodiff::{Adam, Optimizer, ParamId, Tape};
use litho_masks::Dataset;
use litho_math::{ComplexMatrix, DeterministicRng, RealMatrix};
use litho_metrics::{AerialMetrics, ResistMetrics};
use litho_optics::config::{kernel_side, KernelDims};
use litho_optics::{OpticalConfig, ProcessCondition};

use crate::cmlp::{Cmlp, CmlpArchitecture};
use crate::training::{NithoConfig, TrainingReport};

/// Evaluation summary of a trained model on a labelled dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvaluationReport {
    /// Aerial-image metrics (MSE, max error, PSNR).
    pub aerial: AerialMetrics,
    /// Resist-image metrics (mPA, mIOU) after thresholding.
    pub resist: ResistMetrics,
}

/// A Nitho model bound to an optical configuration.
///
/// The model owns a [`Cmlp`] that regresses the optical kernels from
/// positional-encoded coordinates; after training the predicted kernels are
/// cached so inference requires no network evaluation at all (the paper's
/// "fast lithography" property).
#[derive(Debug, Clone)]
pub struct NithoModel {
    config: NithoConfig,
    optics: OpticalConfig,
    dims: KernelDims,
    training_resolution: usize,
    encoded_coords: ComplexMatrix,
    cmlp: Cmlp,
    cached_kernels: Option<Vec<ComplexMatrix>>,
}

impl NithoModel {
    /// Creates an untrained model for the given optical configuration.
    ///
    /// The kernel grid side defaults to the resolution-limit formula of
    /// Eq. (10) evaluated on the configured tile, and the training resolution
    /// to the smallest power of two at least twice the kernel side (clamped to
    /// the tile size).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`NithoConfig::validate`]) or the kernel grid does not fit the tile.
    pub fn new(config: NithoConfig, optics: &OpticalConfig) -> Self {
        config.validate();
        let side = config.kernel_side.unwrap_or_else(|| {
            kernel_side(
                optics.tile_nm(),
                optics.wavelength_nm,
                optics.numerical_aperture,
            )
        });
        assert!(
            side <= optics.tile_px,
            "kernel side {side} exceeds the {}-pixel tile",
            optics.tile_px
        );
        let dims = KernelDims {
            rows: side,
            cols: side,
            count: config.kernel_count,
        };
        let training_resolution = config
            .training_resolution
            .unwrap_or_else(|| (2 * side).next_power_of_two().clamp(16, optics.tile_px))
            .max(side);
        assert!(
            training_resolution <= optics.tile_px,
            "training resolution exceeds the tile size"
        );

        let encoded_coords = config.encoding.encode_grid(dims.rows, dims.cols);
        let condition_dim = config
            .condition
            .as_ref()
            .map_or(0, crate::encoding::ConditionEncoding::output_dim);
        let mut rng = DeterministicRng::new(config.seed);
        let architecture = CmlpArchitecture {
            input_dim: config.encoding.output_dim() + condition_dim,
            hidden_dim: config.hidden_dim,
            hidden_blocks: config.hidden_blocks,
            output_dim: config.kernel_count,
        };
        let cmlp = Cmlp::new(architecture, &mut rng);

        Self {
            config,
            optics: optics.clone(),
            dims,
            training_resolution,
            encoded_coords,
            cmlp,
            cached_kernels: None,
        }
    }

    /// The training configuration.
    pub fn config(&self) -> &NithoConfig {
        &self.config
    }

    /// The optical configuration the model is bound to.
    pub fn optics(&self) -> &OpticalConfig {
        &self.optics
    }

    /// Kernel-grid dimensions (`r × n × m`).
    pub fn kernel_dims(&self) -> KernelDims {
        self.dims
    }

    /// Resolution used during training.
    pub fn training_resolution(&self) -> usize {
        self.training_resolution
    }

    /// Number of real scalar parameters of the CMLP (Table I comparison).
    pub fn num_parameters(&self) -> usize {
        self.cmlp.num_parameters()
    }

    /// Model size in bytes at 32-bit precision per real scalar (Table I).
    pub fn size_bytes(&self) -> usize {
        self.cmlp.size_bytes()
    }

    /// The underlying complex-valued MLP.
    pub fn cmlp(&self) -> &Cmlp {
        &self.cmlp
    }

    /// The predicted optical kernels at the nominal condition, if the model
    /// has been trained (or the kernels refreshed with
    /// [`NithoModel::refresh_kernels`]).
    pub fn kernels(&self) -> Option<&[ComplexMatrix]> {
        self.cached_kernels.as_deref()
    }

    /// `true` when the model can evaluate kernels at this condition: any
    /// condition for a conditioned model, only the nominal point otherwise.
    pub fn supports_condition(&self, condition: &ProcessCondition) -> bool {
        self.config.is_conditioned() || condition.is_nominal()
    }

    /// The CMLP input matrix for a process condition: the spatial positional
    /// encoding, with the encoded condition appended to every row for
    /// conditioned models.
    ///
    /// # Panics
    ///
    /// Panics if the model does not [support](NithoModel::supports_condition)
    /// the condition.
    fn conditioned_input(&self, condition: &ProcessCondition) -> ComplexMatrix {
        let Some(encoding) = &self.config.condition else {
            assert!(
                condition.is_nominal(),
                "model is not process-window conditioned; it can only be \
                 evaluated at the nominal condition"
            );
            return self.encoded_coords.clone();
        };
        let features = encoding.encode(condition);
        let spatial_dim = self.encoded_coords.cols();
        ComplexMatrix::from_fn(
            self.encoded_coords.rows(),
            spatial_dim + features.len(),
            |i, j| {
                if j < spatial_dim {
                    self.encoded_coords[(i, j)]
                } else {
                    features[j - spatial_dim]
                }
            },
        )
    }

    /// Slices a `grid_points × r` CMLP output into `r` kernel matrices.
    fn slice_kernels(&self, output: &ComplexMatrix) -> Vec<ComplexMatrix> {
        (0..self.dims.count)
            .map(|k| {
                ComplexMatrix::from_fn(self.dims.rows, self.dims.cols, |i, j| {
                    output[(i * self.dims.cols + j, k)]
                })
            })
            .collect()
    }

    /// Evaluates the neural field at a process condition, returning the `r`
    /// predicted optical kernels (one network inference; no cache).
    ///
    /// # Panics
    ///
    /// Panics if the model does not [support](NithoModel::supports_condition)
    /// the condition.
    pub fn kernels_at(&self, condition: &ProcessCondition) -> Vec<ComplexMatrix> {
        let output = self.cmlp.infer(&self.conditioned_input(condition));
        self.slice_kernels(&output)
    }

    /// Freezes the neural field at a process condition into a standalone
    /// fast-inference engine (the kernels are evaluated once; subsequent
    /// aerial predictions are pure SOCS synthesis). Returns `None` when the
    /// model cannot serve the condition (nominal-only model asked for an
    /// off-nominal point).
    pub fn at_condition(&self, condition: &ProcessCondition) -> Option<ConditionedKernels> {
        if !self.supports_condition(condition) {
            return None;
        }
        Some(ConditionedKernels {
            optics: self.optics.clone(),
            dims: self.dims,
            condition: *condition,
            kernels: self.kernels_at(condition),
        })
    }

    /// Evaluates the neural field at several process conditions through one
    /// [prepared](Cmlp::prepare) dispatch: the SoA parameter split and
    /// activation buffers are paid once for the whole stack instead of once
    /// per condition, while each condition's kernel-grid encoding is built
    /// just-in-time and dropped after its pass — peak memory stays at one
    /// encoding no matter how many conditions are stacked (the streamed
    /// process-window handler relies on this). Each condition's kernels are
    /// bit-identical to a solo [`NithoModel::kernels_at`] call regardless of
    /// how the batch is composed — the serving tier relies on this to merge
    /// specializations from concurrent requests.
    ///
    /// # Panics
    ///
    /// Panics if the model does not
    /// [support](NithoModel::supports_condition) one of the conditions.
    pub fn kernels_at_batch(&self, conditions: &[ProcessCondition]) -> Vec<Vec<ComplexMatrix>> {
        let mut prepared = self.cmlp.prepare();
        conditions
            .iter()
            .map(|condition| {
                let input = self.conditioned_input(condition);
                self.slice_kernels(&prepared.infer(&input))
            })
            .collect()
    }

    /// Batched [`NithoModel::at_condition`]: freezes the field at every
    /// condition with one network dispatch. Per-condition results (including
    /// the `None` for unsupported conditions) match the solo path exactly.
    pub fn at_conditions(
        &self,
        conditions: &[ProcessCondition],
    ) -> Vec<Option<ConditionedKernels>> {
        let supported: Vec<ProcessCondition> = conditions
            .iter()
            .copied()
            .filter(|c| self.supports_condition(c))
            .collect();
        let mut kernels = self.kernels_at_batch(&supported).into_iter();
        conditions
            .iter()
            .map(|condition| {
                if !self.supports_condition(condition) {
                    return None;
                }
                Some(ConditionedKernels {
                    optics: self.optics.clone(),
                    dims: self.dims,
                    condition: *condition,
                    kernels: kernels
                        .next()
                        .expect("one kernel set per supported condition"),
                })
            })
            .collect()
    }

    /// Re-evaluates the CMLP on the coordinate grid (at the nominal process
    /// condition) and caches the predicted kernels for fast inference.
    pub fn refresh_kernels(&mut self) {
        self.cached_kernels = Some(self.kernels_at(&ProcessCondition::nominal()));
    }

    /// Runs the forward training procedure (Algorithm 1) on the mask–aerial
    /// pairs of `dataset`, returning the per-epoch loss trace.
    ///
    /// Within each mini-batch, samples are evaluated on independent autodiff
    /// tapes distributed over `litho_parallel` workers (`NITHO_THREADS`);
    /// losses and gradients are reduced in fixed sample order, so the trained
    /// parameters are bit-identical for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or its tiles do not match the model's
    /// optical configuration.
    pub fn train(&mut self, dataset: &Dataset) -> TrainingReport {
        self.train_groups(&[(ProcessCondition::nominal(), dataset)])
    }

    /// Trains one conditioned model across a process window: each group pairs
    /// a process condition with the dataset labelled by the rigorous
    /// simulator *at that condition*, and the condition is fed to the network
    /// alongside the kernel coordinates (see
    /// [`ConditionEncoding`](crate::encoding::ConditionEncoding)).
    ///
    /// Determinism matches [`NithoModel::train`]: per-sample tapes over
    /// `litho_parallel`, fixed-order reduction, bit-identical parameters for
    /// any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty, any group's dataset is empty or
    /// mismatched with the optics, or the model does not
    /// [support](NithoModel::supports_condition) one of the conditions (a
    /// nominal-only model can only train on the nominal condition).
    pub fn train_process_window(
        &mut self,
        groups: &[(ProcessCondition, Dataset)],
    ) -> TrainingReport {
        let by_ref: Vec<(ProcessCondition, &Dataset)> =
            groups.iter().map(|(c, d)| (*c, d)).collect();
        self.train_groups(&by_ref)
    }

    fn train_groups(&mut self, groups: &[(ProcessCondition, &Dataset)]) -> TrainingReport {
        assert!(!groups.is_empty(), "cannot train on an empty dataset");
        let tile = self.optics.tile_px;
        let t_res = self.training_resolution;

        // Pre-compute the non-parametric operations once: the CMLP input per
        // condition (spatial encoding + condition features), and per sample
        // the cropped, centered spectrum (Algorithm 1 lines 6–7) and the
        // band-limited training target.
        let mut inputs = Vec::with_capacity(groups.len());
        let mut input_idx = Vec::new();
        let mut spectra = Vec::new();
        let mut targets = Vec::new();
        let mut mask_pixels = Vec::new();
        for (group, (condition, dataset)) in groups.iter().enumerate() {
            assert!(
                self.supports_condition(condition),
                "model is not conditioned; train at the nominal condition or \
                 configure NithoConfig::condition"
            );
            assert!(!dataset.is_empty(), "cannot train on an empty dataset");
            inputs.push(self.conditioned_input(condition));
            for sample in dataset.samples() {
                assert_eq!(
                    sample.mask.shape(),
                    (tile, tile),
                    "dataset tile size does not match the optical configuration"
                );
                spectra.push(litho_fft::soa::cropped_centered_spectrum(
                    &sample.mask,
                    self.dims.rows,
                    self.dims.cols,
                ));
                targets.push(litho_optics::socs::band_limited_resample(
                    &sample.aerial,
                    t_res,
                    t_res,
                ));
                mask_pixels.push(sample.mask.len());
                input_idx.push(group);
            }
        }

        let mut rng = DeterministicRng::new(self.config.seed ^ 0x7261_696e);
        let mut adam = Adam::new(self.config.learning_rate);
        let mut report = TrainingReport::default();

        for _epoch in 0..self.config.epochs {
            let mut order: Vec<usize> = (0..spectra.len()).collect();
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;

            for batch in order.chunks(self.config.batch_size) {
                let inv_batch = 1.0 / batch.len() as f64;

                // Forward/backward each sample on its own tape. Samples are
                // independent, so they spread over litho_parallel workers; the
                // per-sample work (CMLP forward, SOCS synthesis, reverse pass)
                // never depends on the thread count. The small CMLP forward is
                // deliberately repeated per sample: sharing it would couple the
                // samples onto one tape, and the decomposition must stay fixed
                // for the trained parameters to be bit-identical at any thread
                // count. The per-sample SOCS chain (r ifft2 pairs at training
                // resolution) dominates the batch cost.
                let per_sample = litho_parallel::par_map(batch.len(), |b| {
                    let sample_idx = batch[b];
                    let mut tape = Tape::new();
                    let coords = tape.constant(inputs[input_idx[sample_idx]].clone());
                    let (output, leaves) = self.cmlp.forward(&mut tape, coords);

                    // Slice the CMLP output into r kernel nodes (one per column).
                    let kernel_nodes: Vec<_> = (0..self.dims.count)
                        .map(|k| tape.column_as_matrix(output, k, self.dims.rows, self.dims.cols))
                        .collect();

                    let spectrum = tape.constant(spectra[sample_idx].clone());
                    let scale = ((t_res * t_res) as f64 / mask_pixels[sample_idx] as f64).powi(2);
                    // SOCS synthesis (Algorithm 1 lines 10–12).
                    let mut intensity = None;
                    for &kernel in &kernel_nodes {
                        let product = tape.mul(kernel, spectrum);
                        let padded = tape.center_pad(product, t_res, t_res);
                        let unshifted = tape.ifftshift(padded);
                        let field = tape.ifft2(unshifted);
                        let power = tape.abs_sq(field);
                        intensity = Some(match intensity {
                            None => power,
                            Some(acc) => tape.add(acc, power),
                        });
                    }
                    let raw = intensity.expect("at least one kernel");
                    let normalized = tape.scale_re(raw, scale);
                    let sample_loss = tape.mse_loss(normalized, &targets[sample_idx]);
                    tape.backward(sample_loss);

                    let loss_value = tape.value(sample_loss)[(0, 0)].re;
                    let grads: Vec<(ParamId, Option<ComplexMatrix>)> = leaves
                        .iter()
                        .map(|(pid, nid)| (*pid, tape.grad(*nid).cloned()))
                        .collect();
                    (loss_value, grads)
                });

                // Reduce losses and per-parameter gradients in fixed sample
                // order, then average — bit-identical for any thread count.
                let mut batch_loss = 0.0;
                let mut grad_sums: Vec<(ParamId, Option<ComplexMatrix>)> = Vec::new();
                for (loss_value, sample_grads) in per_sample {
                    batch_loss += loss_value;
                    if grad_sums.is_empty() {
                        grad_sums = sample_grads;
                        continue;
                    }
                    for ((acc_pid, acc), (grad_pid, grad)) in grad_sums.iter_mut().zip(sample_grads)
                    {
                        debug_assert_eq!(
                            *acc_pid, grad_pid,
                            "per-sample tapes must yield leaves in identical order"
                        );
                        if let Some(grad) = grad {
                            match acc {
                                Some(sum) => *sum += &grad,
                                None => *acc = Some(grad),
                            }
                        }
                    }
                }
                epoch_loss += batch_loss * inv_batch;
                batches += 1;

                let grads: Vec<(ParamId, ComplexMatrix)> = grad_sums
                    .into_iter()
                    .filter_map(|(pid, sum)| sum.map(|g| (pid, g.scale_re(inv_batch))))
                    .collect();
                adam.step(self.cmlp.params_mut(), &grads);
            }
            report.epoch_losses.push(epoch_loss / batches.max(1) as f64);
        }

        self.refresh_kernels();
        report
    }

    /// Predicts the aerial image of a mask at the mask's own resolution using
    /// the cached kernels (no network inference — the paper's fast-lithography
    /// path).
    ///
    /// # Panics
    ///
    /// Panics if the model has not been trained and the kernels were never
    /// refreshed, or the mask is smaller than the kernel grid.
    pub fn predict_aerial(&self, mask: &RealMatrix) -> RealMatrix {
        self.predict_aerial_at(mask, mask.rows())
    }

    /// Predicts the aerial image at an explicit square output resolution.
    ///
    /// # Panics
    ///
    /// Panics if the model has no cached kernels or the output resolution is
    /// smaller than the kernel grid.
    pub fn predict_aerial_at(&self, mask: &RealMatrix, out: usize) -> RealMatrix {
        let kernels = self
            .cached_kernels
            .as_ref()
            .expect("model must be trained (or kernels refreshed) before prediction");
        synthesize_aerial(kernels, self.dims, mask, out)
    }

    /// The cropped, centered mask spectrum on this model's kernel grid — the
    /// condition-independent half of a prediction. Compute it once per mask
    /// and fan it across conditions with
    /// [`NithoModel::predict_aerial_from_spectrum`] /
    /// [`ConditionedKernels::predict_aerial_from_spectrum`]; the mask never
    /// changes with focus or dose, so neither does its spectrum.
    pub fn cropped_spectrum(&self, mask: &RealMatrix) -> ComplexMatrix {
        litho_fft::soa::cropped_centered_spectrum(mask, self.dims.rows, self.dims.cols)
    }

    /// Predicts the aerial image from a precomputed
    /// [`cropped_spectrum`](NithoModel::cropped_spectrum) using the cached
    /// nominal kernels. `mask_pixels` is the pixel count of the original mask
    /// and `out` the square output resolution.
    ///
    /// # Panics
    ///
    /// Panics if the model has no cached kernels, the spectrum does not match
    /// the kernel grid, or `out` is smaller than the kernel grid.
    pub fn predict_aerial_from_spectrum(
        &self,
        spectrum: &ComplexMatrix,
        mask_pixels: usize,
        out: usize,
    ) -> RealMatrix {
        let kernels = self
            .cached_kernels
            .as_ref()
            .expect("model must be trained (or kernels refreshed) before prediction");
        synthesize_aerial_from_spectrum(kernels, self.dims, spectrum, mask_pixels, out)
    }

    /// Predicts the aerial image of a mask at a process condition (one CMLP
    /// inference for the condition's kernels, then SOCS synthesis). For
    /// repeated predictions at one condition, freeze it once with
    /// [`NithoModel::at_condition`] instead.
    ///
    /// # Panics
    ///
    /// Panics if the model does not [support](NithoModel::supports_condition)
    /// the condition or the mask is smaller than the kernel grid.
    pub fn predict_aerial_at_condition(
        &self,
        mask: &RealMatrix,
        condition: &ProcessCondition,
    ) -> RealMatrix {
        synthesize_aerial(&self.kernels_at(condition), self.dims, mask, mask.rows())
    }

    /// Visitor-style process-window sweep: computes the mask's cropped
    /// spectrum **once** (it never depends on focus or dose), then for each
    /// condition runs one CMLP inference, synthesizes the aerial into the
    /// caller-owned `scratch` plane and yields
    /// `(condition, effective_resist_threshold, aerial)` before the plane is
    /// recycled — the whole sweep keeps O(1) planes resident and the warm
    /// synthesis path allocates nothing per condition.
    ///
    /// Each yielded aerial is bit-identical to
    /// `at_condition(c).predict_aerial(mask)` for a square mask.
    ///
    /// # Panics
    ///
    /// Panics if the model does not [support](NithoModel::supports_condition)
    /// a condition, `scratch` is not mask-shaped, or the mask is smaller than
    /// the kernel grid.
    pub fn for_each_condition(
        &self,
        mask: &RealMatrix,
        conditions: &[ProcessCondition],
        scratch: &mut RealMatrix,
        mut visit: impl FnMut(&ProcessCondition, f64, &RealMatrix),
    ) {
        assert_eq!(
            scratch.shape(),
            mask.shape(),
            "scratch plane must match the mask shape"
        );
        let spectrum = self.cropped_spectrum(mask);
        for condition in conditions {
            let frozen = self.at_condition(condition).unwrap_or_else(|| {
                panic!(
                    "model is not process-window conditioned; it cannot serve \
                     condition {condition}"
                )
            });
            frozen.predict_aerial_from_spectrum_into(&spectrum, mask.len(), scratch);
            visit(condition, frozen.effective_resist_threshold(), scratch);
        }
    }

    /// Predicts the binary resist image by thresholding the predicted aerial
    /// image.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`NithoModel::predict_aerial`].
    pub fn predict_resist(&self, mask: &RealMatrix, threshold: f64) -> RealMatrix {
        self.predict_aerial(mask).threshold(threshold)
    }

    /// Evaluates the trained model on a labelled dataset, returning aggregate
    /// aerial and resist metrics at full tile resolution.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or the model has no cached kernels.
    pub fn evaluate(&self, dataset: &Dataset, resist_threshold: f64) -> EvaluationReport {
        assert!(!dataset.is_empty(), "cannot evaluate on an empty dataset");
        let mut aerial_pairs = Vec::with_capacity(dataset.len());
        let mut resist_pairs = Vec::with_capacity(dataset.len());
        for sample in dataset.samples() {
            let predicted_aerial = self.predict_aerial(&sample.mask);
            let predicted_resist = predicted_aerial.threshold(resist_threshold);
            aerial_pairs.push((sample.aerial.clone(), predicted_aerial));
            resist_pairs.push((sample.resist.clone(), predicted_resist));
        }
        EvaluationReport {
            aerial: AerialMetrics::evaluate(aerial_pairs.iter().map(|(a, b)| (a, b))),
            resist: ResistMetrics::evaluate(resist_pairs.iter().map(|(a, b)| (a, b))),
        }
    }

    /// Evaluates the model on a dataset labelled *at the given process
    /// condition* (e.g. one group of a
    /// [`ProcessDataset`](litho_masks::ProcessDataset)): kernels are
    /// evaluated at the condition and the resist threshold carries the
    /// condition's dose (`t/d`).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or the model does not
    /// [support](NithoModel::supports_condition) the condition.
    pub fn evaluate_at_condition(
        &self,
        dataset: &Dataset,
        condition: &ProcessCondition,
        resist_threshold: f64,
    ) -> EvaluationReport {
        assert!(!dataset.is_empty(), "cannot evaluate on an empty dataset");
        let kernels = self.kernels_at(condition);
        let effective_threshold = resist_threshold / condition.dose;
        let mut aerial_pairs = Vec::with_capacity(dataset.len());
        let mut resist_pairs = Vec::with_capacity(dataset.len());
        for sample in dataset.samples() {
            let predicted_aerial =
                synthesize_aerial(&kernels, self.dims, &sample.mask, sample.mask.rows());
            let predicted_resist = predicted_aerial.threshold(effective_threshold);
            aerial_pairs.push((sample.aerial.clone(), predicted_aerial));
            resist_pairs.push((sample.resist.clone(), predicted_resist));
        }
        EvaluationReport {
            aerial: AerialMetrics::evaluate(aerial_pairs.iter().map(|(a, b)| (a, b))),
            resist: ResistMetrics::evaluate(resist_pairs.iter().map(|(a, b)| (a, b))),
        }
    }

    /// Fingerprint of this model's `NithoConfig` + `OpticalConfig`, embedded
    /// in checkpoints so weights can never be loaded into a mismatched model.
    pub fn checkpoint_fingerprint(&self) -> u64 {
        crate::checkpoint::config_fingerprint(&self.config, &self.optics)
    }

    /// Saves a versioned `NITHOCKPT` checkpoint: format header + config
    /// fingerprint + the CMLP parameters.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the file.
    pub fn save_parameters(&self, path: &Path) -> std::io::Result<()> {
        crate::checkpoint::save(path, self.checkpoint_fingerprint(), self.cmlp.params())
    }

    /// Loads a checkpoint previously saved with
    /// [`NithoModel::save_parameters`] and refreshes the kernel cache.
    /// Legacy headerless `NITHOPRM` files load with a warning; `NITHOCKPT`
    /// files are rejected unless their config fingerprint matches this model.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be read, was saved for a
    /// different configuration, or does not match the model architecture.
    pub fn load_parameters(&mut self, path: &Path) -> std::io::Result<()> {
        let loaded = crate::checkpoint::load(path, self.checkpoint_fingerprint())?;
        if loaded.len() != self.cmlp.params().len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "parameter file does not match the model architecture",
            ));
        }
        // Validate every name and shape before touching any weight, so a
        // malformed (or reordered legacy) file can never leave the model
        // half-overwritten or silently load weights into the wrong slots.
        for (id, name, value) in loaded.iter() {
            if name != self.cmlp.params().name(id) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "parameter order mismatch while loading: found {name:?} where \
                         {:?} was expected",
                        self.cmlp.params().name(id)
                    ),
                ));
            }
            if value.shape() != self.cmlp.params().value(id).shape() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "parameter shape mismatch while loading",
                ));
            }
        }
        for (id, _, value) in loaded.iter() {
            *self.cmlp.params_mut().value_mut(id) = value.clone();
        }
        self.refresh_kernels();
        Ok(())
    }
}

/// SOCS synthesis with predicted kernels (the paper's fast-lithography path,
/// shared by [`NithoModel`] and [`ConditionedKernels`]): crop the centered
/// mask spectrum to the kernel grid, then run the fused split-complex
/// synthesis ([`litho_fft::soa`]) — every kernel's field is accumulated as
/// `|·|²` straight into the aerial buffer without materializing per-kernel
/// matrices.
///
/// # Panics
///
/// Panics if the output resolution is smaller than the kernel grid.
fn synthesize_aerial(
    kernels: &[ComplexMatrix],
    dims: KernelDims,
    mask: &RealMatrix,
    out: usize,
) -> RealMatrix {
    let cropped = litho_fft::soa::cropped_centered_spectrum(mask, dims.rows, dims.cols);
    synthesize_aerial_from_spectrum(kernels, dims, &cropped, mask.len(), out)
}

/// [`synthesize_aerial`] starting from an already cropped, centered mask
/// spectrum — the reuse point for process-window sweeps, where the mask (and
/// therefore its spectrum) is constant across all focus/dose conditions and
/// only the kernels change.
///
/// # Panics
///
/// Panics if the spectrum does not match the kernel grid or the output
/// resolution is smaller than the kernel grid.
fn synthesize_aerial_from_spectrum(
    kernels: &[ComplexMatrix],
    dims: KernelDims,
    cropped: &ComplexMatrix,
    mask_pixels: usize,
    out: usize,
) -> RealMatrix {
    let mut intensity = RealMatrix::zeros(out, out);
    synthesize_aerial_from_spectrum_into(kernels, dims, cropped, mask_pixels, &mut intensity);
    intensity
}

/// [`synthesize_aerial_from_spectrum`] into a caller-owned output plane
/// (overwritten, not accumulated) — the zero-allocation synthesis step of a
/// streamed process-window sweep, where one scratch plane is recycled across
/// every condition. Writing in place and scaling element-wise performs the
/// same f64 operations as the allocating path, so the result is bit-identical
/// to [`synthesize_aerial_from_spectrum`] with `out`'s edge length.
///
/// # Panics
///
/// Panics if the spectrum does not match the kernel grid or the output plane
/// is smaller than the kernel grid.
fn synthesize_aerial_from_spectrum_into(
    kernels: &[ComplexMatrix],
    dims: KernelDims,
    cropped: &ComplexMatrix,
    mask_pixels: usize,
    out: &mut RealMatrix,
) {
    assert_eq!(
        cropped.shape(),
        (dims.rows, dims.cols),
        "spectrum must match the kernel grid"
    );
    let (rows, cols) = out.shape();
    assert!(
        rows >= dims.rows && cols >= dims.cols,
        "output resolution is smaller than the kernel grid"
    );
    let _span = litho_obs::span("socs.aerial");
    litho_optics::socs::record_synthesis(kernels.len());
    let scale = ((rows * cols) as f64 / mask_pixels as f64).powi(2);
    out.as_mut_slice().fill(0.0);
    // The precision knob (`NITHO_PRECISION=f32`) applies exactly here — the
    // per-kernel inverse transforms and |field|² accumulation that dominate
    // serving latency. The spectrum crop above and the intensity scaling
    // below stay f64, as does everything on the training side.
    match litho_math::simd::precision() {
        litho_math::simd::Precision::F64 => {
            litho_fft::soa::accumulate_socs_intensity(kernels, cropped, out);
        }
        litho_math::simd::Precision::F32 => {
            litho_fft::soa::accumulate_socs_intensity_f32(kernels, cropped, out);
        }
    }
    for value in out.as_mut_slice() {
        *value *= scale;
    }
}

/// A neural field frozen at one process condition: the kernels were evaluated
/// once by [`NithoModel::at_condition`], so aerial prediction is pure SOCS
/// synthesis with no network in the loop — the object the serving layer fans
/// a process-window matrix over.
#[derive(Debug, Clone)]
pub struct ConditionedKernels {
    optics: OpticalConfig,
    dims: KernelDims,
    condition: ProcessCondition,
    kernels: Vec<ComplexMatrix>,
}

impl ConditionedKernels {
    /// The optical configuration of the parent model.
    pub fn optics(&self) -> &OpticalConfig {
        &self.optics
    }

    /// The process condition the kernels were evaluated at.
    pub fn condition(&self) -> ProcessCondition {
        self.condition
    }

    /// The frozen kernels.
    pub fn kernels(&self) -> &[ComplexMatrix] {
        &self.kernels
    }

    /// Resist development threshold with the condition's dose folded in
    /// (`t / d`, see `litho_optics::resist`).
    pub fn effective_resist_threshold(&self) -> f64 {
        self.optics.resist_threshold / self.condition.dose
    }

    /// Predicts the aerial image of a mask at the mask's own resolution.
    ///
    /// # Panics
    ///
    /// Panics if the mask is smaller than the kernel grid.
    pub fn predict_aerial(&self, mask: &RealMatrix) -> RealMatrix {
        self.predict_aerial_at(mask, mask.rows())
    }

    /// Predicts the aerial image at an explicit square output resolution.
    ///
    /// # Panics
    ///
    /// Panics if the output resolution is smaller than the kernel grid.
    pub fn predict_aerial_at(&self, mask: &RealMatrix, out: usize) -> RealMatrix {
        synthesize_aerial(&self.kernels, self.dims, mask, out)
    }

    /// The cropped, centered mask spectrum on this engine's kernel grid (see
    /// [`NithoModel::cropped_spectrum`]): identical for every condition of a
    /// process window, so compute it once per mask.
    pub fn cropped_spectrum(&self, mask: &RealMatrix) -> ComplexMatrix {
        litho_fft::soa::cropped_centered_spectrum(mask, self.dims.rows, self.dims.cols)
    }

    /// Predicts the aerial image from a precomputed cropped spectrum —
    /// the per-condition half of a process-window sweep. Bit-identical to
    /// [`ConditionedKernels::predict_aerial`] on the originating mask.
    ///
    /// # Panics
    ///
    /// Panics if the spectrum does not match the kernel grid or `out` is
    /// smaller than the kernel grid.
    pub fn predict_aerial_from_spectrum(
        &self,
        spectrum: &ComplexMatrix,
        mask_pixels: usize,
        out: usize,
    ) -> RealMatrix {
        synthesize_aerial_from_spectrum(&self.kernels, self.dims, spectrum, mask_pixels, out)
    }

    /// [`ConditionedKernels::predict_aerial_from_spectrum`] into a
    /// caller-owned plane (overwritten): the warm path of a streamed
    /// process-window sweep allocates nothing per condition — the spectrum is
    /// computed once per mask and the same scratch plane absorbs every
    /// condition's synthesis. Bit-identical to the allocating form.
    ///
    /// # Panics
    ///
    /// Panics if the spectrum does not match the kernel grid or `out` is
    /// smaller than the kernel grid.
    pub fn predict_aerial_from_spectrum_into(
        &self,
        spectrum: &ComplexMatrix,
        mask_pixels: usize,
        out: &mut RealMatrix,
    ) {
        synthesize_aerial_from_spectrum_into(&self.kernels, self.dims, spectrum, mask_pixels, out);
    }

    /// Predicts the binary resist image at the condition's effective
    /// threshold.
    ///
    /// # Panics
    ///
    /// Panics if the mask is smaller than the kernel grid.
    pub fn predict_resist(&self, mask: &RealMatrix) -> RealMatrix {
        self.predict_aerial(mask)
            .threshold(self.effective_resist_threshold())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::PositionalEncoding;
    use litho_masks::DatasetKind;
    use litho_optics::HopkinsSimulator;

    fn fast_optics() -> OpticalConfig {
        OpticalConfig::builder()
            .tile_px(64)
            .pixel_nm(8.0)
            .kernel_count(6)
            .build()
    }

    fn fast_nitho_config() -> NithoConfig {
        NithoConfig {
            kernel_side: Some(9),
            epochs: 25,
            batch_size: 4,
            learning_rate: 4e-3,
            ..NithoConfig::fast()
        }
    }

    fn trained_model_and_data() -> (NithoModel, Dataset, Dataset, OpticalConfig) {
        let optics = fast_optics();
        let simulator = HopkinsSimulator::new(&optics);
        let dataset = Dataset::generate(DatasetKind::B1, 12, &simulator, 3);
        let (train, test) = dataset.split(0.75);
        let mut model = NithoModel::new(fast_nitho_config(), &optics);
        model.train(&train);
        (model, train, test, optics)
    }

    #[test]
    fn model_dimensions_follow_resolution_limit() {
        let optics = fast_optics();
        let model = NithoModel::new(NithoConfig::fast(), &optics);
        // 512 nm tile → Eq. (10) gives 2·⌊512·2·1.35/193⌋+1 = 15.
        assert_eq!(model.kernel_dims().rows, 15);
        assert_eq!(model.kernel_dims().count, 6);
        assert!(model.training_resolution() >= 30);
        assert!(model.training_resolution() <= 64);
        assert!(model.kernels().is_none());
        assert!(model.num_parameters() > 0);
        assert_eq!(model.size_bytes(), model.num_parameters() * 4);
    }

    #[test]
    fn kernel_side_override_is_respected() {
        let optics = fast_optics();
        let model = NithoModel::new(fast_nitho_config(), &optics);
        assert_eq!(model.kernel_dims().rows, 9);
        assert_eq!(model.config().kernel_count, 6);
        assert_eq!(model.optics().tile_px, 64);
    }

    #[test]
    fn refresh_kernels_without_training_allows_prediction() {
        let optics = fast_optics();
        let mut model = NithoModel::new(fast_nitho_config(), &optics);
        model.refresh_kernels();
        let kernels = model.kernels().expect("kernels cached");
        assert_eq!(kernels.len(), 6);
        assert_eq!(kernels[0].shape(), (9, 9));
        let mask = RealMatrix::filled(64, 64, 1.0);
        let aerial = model.predict_aerial(&mask);
        assert_eq!(aerial.shape(), (64, 64));
        assert!(aerial.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "must be trained")]
    fn prediction_without_kernels_panics() {
        let optics = fast_optics();
        let model = NithoModel::new(fast_nitho_config(), &optics);
        let _ = model.predict_aerial(&RealMatrix::zeros(64, 64));
    }

    #[test]
    fn training_reduces_loss_and_reaches_good_accuracy() {
        let (model, _train, test, optics) = trained_model_and_data();
        let report = {
            // Re-train a fresh model to get the report (the helper discards it).
            let simulator = HopkinsSimulator::new(&optics);
            let dataset = Dataset::generate(DatasetKind::B1, 12, &simulator, 3);
            let (train, _) = dataset.split(0.75);
            let mut fresh = NithoModel::new(fast_nitho_config(), &optics);
            fresh.train(&train)
        };
        assert_eq!(report.len(), 25);
        assert!(
            report.improvement_ratio() < 0.2,
            "loss should drop by at least 5x: {} → {}",
            report.initial_loss(),
            report.final_loss()
        );

        let evaluation = model.evaluate(&test, optics.resist_threshold);
        assert!(
            evaluation.aerial.psnr_db > 24.0,
            "PSNR too low: {:.2} dB",
            evaluation.aerial.psnr_db
        );
        assert!(
            evaluation.resist.miou_percent > 88.0,
            "mIOU too low: {:.1}%",
            evaluation.resist.miou_percent
        );
    }

    #[test]
    fn trained_model_generalizes_to_other_mask_family() {
        // The heart of the paper's claim: kernels are mask-independent, so a
        // model trained on metal clips transfers to via arrays.
        let (model, _, _, optics) = trained_model_and_data();
        let simulator = HopkinsSimulator::new(&optics);
        let vias = Dataset::generate(DatasetKind::B2Via, 4, &simulator, 77);
        let ood = model.evaluate(&vias, optics.resist_threshold);
        assert!(
            ood.aerial.psnr_db > 22.0,
            "OOD PSNR too low: {:.2} dB",
            ood.aerial.psnr_db
        );
        assert!(ood.resist.mpa_percent > 85.0);
    }

    #[test]
    fn prediction_resolution_consistency() {
        let (model, train, _, _) = trained_model_and_data();
        let mask = &train.samples()[0].mask;
        let full = model.predict_aerial_at(mask, 64);
        let low = model.predict_aerial_at(mask, 32);
        let resampled = litho_optics::socs::band_limited_resample(&full, 32, 32);
        let rms = low
            .zip_map(&resampled, |a, b| (a - b) * (a - b))
            .mean()
            .sqrt();
        assert!(rms < 1e-8, "resolution-dependent prediction: rms {rms}");
    }

    #[test]
    fn save_and_load_roundtrip_preserves_predictions() {
        let (model, train, _, _) = trained_model_and_data();
        let dir = std::env::temp_dir().join("nitho_model_test");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("model.bin");
        model.save_parameters(&path).expect("save");

        let optics = fast_optics();
        let mut restored = NithoModel::new(fast_nitho_config(), &optics);
        restored.load_parameters(&path).expect("load");
        let mask = &train.samples()[0].mask;
        let a = model.predict_aerial(mask);
        let b = restored.predict_aerial(mask);
        let max_diff = a.zip_map(&b, |x, y| (x - y).abs()).max();
        assert!(max_diff < 1e-12, "restored model differs by {max_diff}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_rejects_mismatched_configuration() {
        let optics = fast_optics();
        let mut model = NithoModel::new(fast_nitho_config(), &optics);
        model.refresh_kernels();
        let dir = std::env::temp_dir().join("nitho_ckpt_mismatch_test");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("model.ckpt");
        model.save_parameters(&path).expect("save");

        // Same architecture, different optics: the weights would load shape-
        // wise, but the kernels they encode belong to other physics.
        let other_optics = OpticalConfig {
            pixel_nm: 4.0,
            ..fast_optics()
        };
        let mut victim = NithoModel::new(fast_nitho_config(), &other_optics);
        let err = victim.load_parameters(&path).expect_err("optics mismatch");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("fingerprint"), "{err}");

        // A different architecture is rejected the same way (before any
        // shape comparison runs).
        let config = NithoConfig {
            hidden_blocks: 2,
            ..fast_nitho_config()
        };
        let mut victim = NithoModel::new(config, &optics);
        assert!(victim.load_parameters(&path).is_err());

        // Training-only knobs do not invalidate a checkpoint.
        let config = NithoConfig {
            epochs: 99,
            learning_rate: 9e-3,
            ..fast_nitho_config()
        };
        let mut compatible = NithoModel::new(config, &optics);
        compatible.load_parameters(&path).expect("retuned load");

        // The original model still round-trips.
        let mut restored = NithoModel::new(fast_nitho_config(), &optics);
        restored.load_parameters(&path).expect("matching load");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_parameter_files_load_with_warning_path() {
        let optics = fast_optics();
        let mut model = NithoModel::new(fast_nitho_config(), &optics);
        model.refresh_kernels();
        let dir = std::env::temp_dir().join("nitho_ckpt_legacy_test");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("legacy.bin");
        // A pre-NITHOCKPT dump: raw parameters, no header.
        model.cmlp().params().save(&path).expect("legacy save");

        let mut restored = NithoModel::new(fast_nitho_config(), &optics);
        restored.load_parameters(&path).expect("legacy load");
        let mask = RealMatrix::filled(64, 64, 1.0);
        let a = model.predict_aerial(&mask);
        let b = restored.predict_aerial(&mask);
        assert!(a.zip_map(&b, |x, y| (x - y).abs()).max() < 1e-12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resist_prediction_is_binary() {
        let (model, train, _, optics) = trained_model_and_data();
        let resist = model.predict_resist(&train.samples()[0].mask, optics.resist_threshold);
        assert!(resist.iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn positional_encoding_ablation_ranks_rff_over_none() {
        // Table V in miniature: RFF must beat the no-encoding variant.
        let optics = fast_optics();
        let simulator = HopkinsSimulator::new(&optics);
        let dataset = Dataset::generate(DatasetKind::B1, 10, &simulator, 5);
        let (train, test) = dataset.split(0.8);

        let run = |encoding: PositionalEncoding| {
            let config = NithoConfig {
                encoding,
                ..fast_nitho_config()
            };
            let mut model = NithoModel::new(config, &optics);
            model.train(&train);
            model
                .evaluate(&test, optics.resist_threshold)
                .aerial
                .psnr_db
        };
        let rff = run(PositionalEncoding::GaussianRff {
            features: 32,
            sigma: 3.0,
            seed: 1,
        });
        let none = run(PositionalEncoding::None);
        assert!(
            rff > none + 2.0,
            "RFF ({rff:.2} dB) should clearly beat no encoding ({none:.2} dB)"
        );
    }

    fn conditioned_config() -> NithoConfig {
        NithoConfig {
            condition: Some(crate::encoding::ConditionEncoding {
                focus_span_nm: 120.0,
                dose_span: 0.1,
                features: 8,
                sigma: 1.0,
                seed: 11,
            }),
            ..fast_nitho_config()
        }
    }

    #[test]
    fn conditioned_model_widens_the_input_and_varies_kernels() {
        let optics = fast_optics();
        let nominal_model = NithoModel::new(fast_nitho_config(), &optics);
        let conditioned = NithoModel::new(conditioned_config(), &optics);
        // 16 extra complex input features (8 RFF frequencies × cos/sin).
        assert_eq!(
            conditioned.cmlp().architecture().input_dim,
            nominal_model.cmlp().architecture().input_dim + 16
        );

        let focus = ProcessCondition::nominal();
        let defocused = ProcessCondition::new(80.0, 1.0);
        assert!(conditioned.supports_condition(&focus));
        assert!(conditioned.supports_condition(&defocused));
        assert!(nominal_model.supports_condition(&focus));
        assert!(!nominal_model.supports_condition(&defocused));

        // Even untrained, the field must map different conditions to
        // different kernels (the condition features reach the network).
        let k_nominal = conditioned.kernels_at(&focus);
        let k_defocus = conditioned.kernels_at(&defocused);
        assert_eq!(k_nominal.len(), 6);
        let diff = k_nominal[0]
            .zip_map(&k_defocus[0], |a, b| (a - b).abs())
            .max();
        assert!(diff > 1e-9, "condition input must reach the kernels");

        // refresh_kernels caches exactly the nominal evaluation.
        let mut refreshed = NithoModel::new(conditioned_config(), &optics);
        refreshed.refresh_kernels();
        assert_eq!(refreshed.kernels().expect("cached"), &k_nominal[..]);
    }

    #[test]
    fn at_condition_freezes_a_consistent_fast_engine() {
        let optics = fast_optics();
        let mut model = NithoModel::new(conditioned_config(), &optics);
        model.refresh_kernels();
        let mask = RealMatrix::from_fn(64, 64, |i, j| {
            if (24..40).contains(&i) && (16..48).contains(&j) {
                1.0
            } else {
                0.0
            }
        });

        // The frozen nominal engine matches the model's cached-kernel path.
        let frozen = model
            .at_condition(&ProcessCondition::nominal())
            .expect("nominal supported");
        let a = model.predict_aerial(&mask);
        let b = frozen.predict_aerial(&mask);
        assert!(a.zip_map(&b, |x, y| (x - y).abs()).max() < 1e-15);
        assert_eq!(frozen.condition(), ProcessCondition::nominal());
        assert_eq!(frozen.optics().tile_px, 64);
        assert_eq!(frozen.kernels().len(), 6);

        // A dosed engine shifts the development threshold.
        let dosed = model
            .at_condition(&ProcessCondition::new(0.0, 1.25))
            .expect("conditioned model serves any condition");
        assert!(
            (dosed.effective_resist_threshold() - optics.resist_threshold / 1.25).abs() < 1e-15
        );
        let resist = dosed.predict_resist(&mask);
        assert!(resist.iter().all(|&v| v == 0.0 || v == 1.0));

        // The one-shot prediction path agrees with the frozen engine.
        let defocused = ProcessCondition::new(60.0, 1.0);
        let one_shot = model.predict_aerial_at_condition(&mask, &defocused);
        let frozen_defocus = model.at_condition(&defocused).expect("supported");
        let c = frozen_defocus.predict_aerial(&mask);
        assert!(one_shot.zip_map(&c, |x, y| (x - y).abs()).max() < 1e-15);

        // Nominal-only models refuse off-nominal conditions.
        let mut nominal_model = NithoModel::new(fast_nitho_config(), &optics);
        nominal_model.refresh_kernels();
        assert!(nominal_model.at_condition(&defocused).is_none());
        assert!(nominal_model
            .at_condition(&ProcessCondition::nominal())
            .is_some());
    }

    #[test]
    fn at_conditions_is_bit_identical_to_solo_specialization() {
        // The serving tier merges condition specializations from concurrent
        // requests into one network dispatch; every frozen engine must come
        // out bit-for-bit equal to the request's private `at_condition` call,
        // and unsupported conditions must keep their per-slot `None`.
        let optics = fast_optics();
        let conditioned = NithoModel::new(conditioned_config(), &optics);
        let conditions = [
            ProcessCondition::nominal(),
            ProcessCondition::new(-60.0, 0.95),
            ProcessCondition::new(80.0, 1.0),
            ProcessCondition::new(0.0, 1.05),
            ProcessCondition::nominal(), // duplicates may share a dispatch
        ];
        let batched = conditioned.at_conditions(&conditions);
        assert_eq!(batched.len(), conditions.len());
        for (slot, condition) in conditions.iter().enumerate() {
            let solo = conditioned.at_condition(condition).expect("supported");
            let merged = batched[slot].as_ref().expect("supported");
            assert_eq!(merged.condition(), solo.condition());
            assert_eq!(merged.kernels().len(), solo.kernels().len());
            for (a, b) in merged.kernels().iter().zip(solo.kernels()) {
                assert_eq!(a.shape(), b.shape());
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_eq!(x.re.to_bits(), y.re.to_bits(), "slot={slot}");
                    assert_eq!(x.im.to_bits(), y.im.to_bits(), "slot={slot}");
                }
            }
        }

        // Mixed support: a nominal-only model yields None exactly where the
        // solo path does, without disturbing the supported slots.
        let nominal_model = NithoModel::new(fast_nitho_config(), &optics);
        let mixed = nominal_model.at_conditions(&[
            ProcessCondition::nominal(),
            ProcessCondition::new(60.0, 1.0),
            ProcessCondition::nominal(),
        ]);
        assert!(mixed[0].is_some());
        assert!(mixed[1].is_none());
        assert!(mixed[2].is_some());
    }

    #[test]
    fn for_each_condition_matches_frozen_engines() {
        let optics = fast_optics();
        let mut model = NithoModel::new(conditioned_config(), &optics);
        model.refresh_kernels();
        let mask = RealMatrix::from_fn(64, 64, |i, j| {
            if (20..44).contains(&i) && (12..52).contains(&j) {
                1.0
            } else {
                0.0
            }
        });
        let conditions = [
            ProcessCondition::nominal(),
            ProcessCondition::new(-60.0, 0.95),
            ProcessCondition::new(60.0, 1.1),
        ];

        let mut scratch = RealMatrix::zeros(64, 64);
        let mut visited = Vec::new();
        model.for_each_condition(
            &mask,
            &conditions,
            &mut scratch,
            |condition, threshold, aerial| {
                visited.push((*condition, threshold, aerial.clone()));
            },
        );

        assert_eq!(visited.len(), conditions.len());
        for (condition, threshold, aerial) in &visited {
            let frozen = model.at_condition(condition).expect("supported");
            let direct = frozen.predict_aerial(&mask);
            // Streaming into caller-owned scratch must be bit-identical
            // to the materializing frozen-engine path.
            assert!(
                aerial
                    .iter()
                    .zip(direct.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "streamed aerial diverged at {condition}"
            );
            assert_eq!(*threshold, frozen.effective_resist_threshold());
        }
    }

    #[test]
    #[should_panic(expected = "not process-window conditioned")]
    fn unconditioned_kernels_at_off_nominal_panics() {
        let optics = fast_optics();
        let model = NithoModel::new(fast_nitho_config(), &optics);
        let _ = model.kernels_at(&ProcessCondition::new(50.0, 1.0));
    }

    #[test]
    fn conditioned_training_learns_the_focus_axis() {
        use litho_masks::ProcessDataset;
        let optics = fast_optics();
        let simulator = HopkinsSimulator::new(&optics);
        let conditions = [
            ProcessCondition::nominal(),
            ProcessCondition::new(120.0, 1.0),
        ];
        let pd = ProcessDataset::generate(DatasetKind::B1, 6, &simulator, &conditions, 13);
        let config = NithoConfig {
            epochs: 20,
            ..conditioned_config()
        };
        let mut model = NithoModel::new(config, &optics);
        let report = model.train_process_window(pd.groups());
        assert_eq!(report.len(), 20);
        assert!(
            report.improvement_ratio() < 0.5,
            "conditioned training must reduce the loss: {} → {}",
            report.initial_loss(),
            report.final_loss()
        );

        // The trained field must track the condition: at each trained
        // condition, its prediction is closer to that condition's rigorous
        // reference than to the other condition's.
        let mask = &pd.groups()[0].1.samples()[0].mask;
        let ref_nominal = &pd.groups()[0].1.samples()[0].aerial;
        let ref_defocus = &pd.groups()[1].1.samples()[0].aerial;
        let rms =
            |a: &RealMatrix, b: &RealMatrix| a.zip_map(b, |x, y| (x - y) * (x - y)).mean().sqrt();
        let at_defocus = model.predict_aerial_at_condition(mask, &conditions[1]);
        assert!(rms(&at_defocus, ref_defocus) < rms(&at_defocus, ref_nominal));
        let at_nominal = model.predict_aerial_at_condition(mask, &conditions[0]);
        assert!(rms(&at_nominal, ref_nominal) < rms(&at_nominal, ref_defocus));
    }

    #[test]
    #[should_panic(expected = "model is not conditioned")]
    fn unconditioned_model_rejects_off_nominal_training() {
        let optics = fast_optics();
        let simulator = HopkinsSimulator::new(&optics);
        let condition = ProcessCondition::new(100.0, 1.0);
        let pd =
            litho_masks::ProcessDataset::generate(DatasetKind::B1, 2, &simulator, &[condition], 5);
        let mut model = NithoModel::new(fast_nitho_config(), &optics);
        let _ = model.train_process_window(pd.groups());
    }

    #[test]
    fn conditioned_checkpoint_roundtrip_preserves_conditioned_predictions() {
        let optics = fast_optics();
        let mut model = NithoModel::new(conditioned_config(), &optics);
        model.refresh_kernels();
        let dir = std::env::temp_dir().join("nitho_conditioned_ckpt_test");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("conditioned.ckpt");
        model.save_parameters(&path).expect("save");

        let mut restored = NithoModel::new(conditioned_config(), &optics);
        restored.load_parameters(&path).expect("load");
        let mask = RealMatrix::filled(64, 64, 1.0);
        for condition in [
            ProcessCondition::nominal(),
            ProcessCondition::new(-90.0, 0.95),
            ProcessCondition::new(45.0, 1.08),
        ] {
            let a = model.predict_aerial_at_condition(&mask, &condition);
            let b = restored.predict_aerial_at_condition(&mask, &condition);
            assert!(a.zip_map(&b, |x, y| (x - y).abs()).max() < 1e-12);
        }

        // A conditioned checkpoint never loads into a nominal model (and
        // vice versa): the input semantics differ.
        let mut nominal_model = NithoModel::new(fast_nitho_config(), &optics);
        let err = nominal_model
            .load_parameters(&path)
            .expect_err("conditioned checkpoint into nominal model");
        assert!(err.to_string().contains("fingerprint"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "kernel side 33 exceeds")]
    fn oversized_kernel_panics() {
        let optics = OpticalConfig::builder().tile_px(32).pixel_nm(16.0).build();
        let config = NithoConfig {
            kernel_side: Some(33),
            ..NithoConfig::fast()
        };
        let _ = NithoModel::new(config, &optics);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn training_on_empty_dataset_panics() {
        let optics = fast_optics();
        let mut model = NithoModel::new(fast_nitho_config(), &optics);
        let _ = model.train(&Dataset::new("empty"));
    }
}
