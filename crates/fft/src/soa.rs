//! Split-complex batched FFT execution: the zero-allocation hot path.
//!
//! The SOCS aerial synthesis spends its life in one loop: for every optical
//! kernel `Kᵢ`, compute `|F⁻¹(ifftshift(pad(Kᵢ ⊙ S)))|²` and accumulate. The
//! AoS implementation materializes four full-resolution matrices per kernel
//! (padded product, shifted product, field, magnitude) — megabytes of
//! allocation per aerial image. This module fuses the whole chain:
//!
//! * [`accumulate_socs_intensity`] embeds each kernel-grid product directly
//!   at its ifftshifted position inside a reusable split-complex scratch
//!   plane, runs the inverse row pass over only the (few) occupied rows, and
//!   folds the column pass straight into a `|z|²`-accumulate on the caller's
//!   aerial buffer. After thread warm-up the loop performs **zero heap
//!   allocations per kernel** (pinned by `tests/hot_path_alloc.rs`).
//! * [`ifft2_batch`] runs K same-shape spectra through one shared row/column
//!   pass setup (single plan lookup, shared scratch).
//! * [`cropped_centered_spectrum`] fuses `center_crop(fftshift(fft2(mask)))`
//!   — the non-parametric "mask operation" of Algorithm 1 — without ever
//!   materializing the shifted full-resolution spectrum.
//!
//! # Equivalence contract
//!
//! The split-complex 1-D kernel is a Stockham autosort radix-2 engine — the
//! same DFT as the AoS Cooley–Tukey plan, decimated in the other direction,
//! so the two layouts agree to roundoff (≈ 1e-15 relative; pinned at
//! ≤ 1e-12 by this module's tests and `tests/soa_equivalence.rs`, with the
//! AoS path retained as the baseline). Pad/shift are pure permutations and
//! per-pixel accumulation visits kernels in slice order, so — like the AoS
//! engine — every result here is bit-identical across thread counts and
//! across repeated runs; only the *cross-layout* comparison is
//! tolerance-based.

use std::cell::RefCell;
use std::sync::Arc;

use litho_math::simd::{simd_backend, Precision, SimdBackend};
use litho_math::{soa, ComplexMatrix, Matrix, RealMatrix};
use litho_obs::Counter;

use crate::cache::{bluestein_plan_for, plan_for, BluesteinPlan};
use crate::plan::FftPlan;

/// Fused SOCS accumulate dispatches, broken down by the SIMD backend and
/// arithmetic precision that actually ran — the operational mirror of the
/// `NITHO_SIMD`/`NITHO_PRECISION` knobs on `/metrics`.
static SOCS_DISPATCH_SCALAR_F64: Counter = Counter::with_label(
    "litho_fft_socs_dispatches_total",
    "fused SOCS accumulate dispatches by SIMD backend and precision",
    "backend=\"scalar\",precision=\"f64\"",
);
static SOCS_DISPATCH_AVX2_F64: Counter = Counter::with_label(
    "litho_fft_socs_dispatches_total",
    "fused SOCS accumulate dispatches by SIMD backend and precision",
    "backend=\"avx2\",precision=\"f64\"",
);
static SOCS_DISPATCH_SCALAR_F32: Counter = Counter::with_label(
    "litho_fft_socs_dispatches_total",
    "fused SOCS accumulate dispatches by SIMD backend and precision",
    "backend=\"scalar\",precision=\"f32\"",
);
static SOCS_DISPATCH_AVX2_F32: Counter = Counter::with_label(
    "litho_fft_socs_dispatches_total",
    "fused SOCS accumulate dispatches by SIMD backend and precision",
    "backend=\"avx2\",precision=\"f32\"",
);

/// Registers the per-backend dispatch counters (called from
/// [`crate::cache::register_metrics`]). Idempotent.
pub(crate) fn register_dispatch_metrics() {
    litho_obs::register(&SOCS_DISPATCH_SCALAR_F64);
    litho_obs::register(&SOCS_DISPATCH_AVX2_F64);
    litho_obs::register(&SOCS_DISPATCH_SCALAR_F32);
    litho_obs::register(&SOCS_DISPATCH_AVX2_F32);
}

fn record_socs_dispatch(backend: SimdBackend, precision: Precision) {
    match (backend, precision) {
        (SimdBackend::Scalar, Precision::F64) => SOCS_DISPATCH_SCALAR_F64.inc(),
        (SimdBackend::Avx2, Precision::F64) => SOCS_DISPATCH_AVX2_F64.inc(),
        (SimdBackend::Scalar, Precision::F32) => SOCS_DISPATCH_SCALAR_F32.inc(),
        (SimdBackend::Avx2, Precision::F32) => SOCS_DISPATCH_AVX2_F32.inc(),
    }
}

/// Total fused SOCS accumulate dispatches that ran at reduced (`f32`)
/// precision, either backend — surfaced in the `/healthz` engine summary.
pub fn total_socs_f32_dispatches() -> u64 {
    SOCS_DISPATCH_SCALAR_F32.get() + SOCS_DISPATCH_AVX2_F32.get()
}

/// A resolved split-complex 1-D strategy for one length (mirror of the AoS
/// `Planned` dispatch in `lib.rs`).
enum SoaPlanned {
    Identity,
    Radix2(Arc<FftPlan>),
    Bluestein(Arc<BluesteinPlan>),
}

impl SoaPlanned {
    fn for_len(n: usize) -> Self {
        if n <= 1 {
            SoaPlanned::Identity
        } else if n.is_power_of_two() {
            SoaPlanned::Radix2(plan_for(n))
        } else {
            SoaPlanned::Bluestein(bluestein_plan_for(n))
        }
    }

    #[inline]
    fn forward(&self, backend: SimdBackend, re: &mut [f64], im: &mut [f64]) {
        match self {
            SoaPlanned::Identity => {}
            SoaPlanned::Radix2(plan) => plan.forward_soa_with(backend, re, im),
            SoaPlanned::Bluestein(plan) => plan.forward_soa_with(backend, re, im),
        }
    }

    #[inline]
    fn inverse(&self, backend: SimdBackend, re: &mut [f64], im: &mut [f64]) {
        match self {
            SoaPlanned::Identity => {}
            SoaPlanned::Radix2(plan) => plan.inverse_soa_with(backend, re, im),
            SoaPlanned::Bluestein(plan) => plan.inverse_soa_with(backend, re, im),
        }
    }

    #[inline]
    fn inverse_f32(&self, backend: SimdBackend, re: &mut [f32], im: &mut [f32]) {
        match self {
            SoaPlanned::Identity => {}
            SoaPlanned::Radix2(plan) => plan.inverse_soa_f32_with(backend, re, im),
            SoaPlanned::Bluestein(plan) => plan.inverse_soa_f32_with(backend, re, im),
        }
    }
}

/// Reusable split-complex working memory. One instance lives per thread;
/// `resize` is a no-op once the thread has seen its steady-state transform
/// sizes, so the warm hot path never touches the allocator.
#[derive(Default)]
struct SoaScratch {
    plane_re: Vec<f64>,
    plane_im: Vec<f64>,
    col_re: Vec<f64>,
    col_im: Vec<f64>,
    prod_re: Vec<f64>,
    prod_im: Vec<f64>,
    /// Column-major (transposed) intensity accumulator: column `j`'s
    /// contributions land contiguously instead of one cache line per pixel.
    acc_t: Vec<f64>,
}

/// f32 twin of [`SoaScratch`] for the reduced-precision accumulate (separate
/// thread-local so enabling `NITHO_PRECISION=f32` never disturbs the f64
/// arenas mid-flight).
#[derive(Default)]
struct SoaScratch32 {
    plane_re: Vec<f32>,
    plane_im: Vec<f32>,
    col_re: Vec<f32>,
    col_im: Vec<f32>,
    prod_re: Vec<f32>,
    prod_im: Vec<f32>,
    spec_re: Vec<f32>,
    spec_im: Vec<f32>,
    acc_t: Vec<f32>,
}

thread_local! {
    static SCRATCH: RefCell<SoaScratch> = RefCell::new(SoaScratch::default());
    static SCRATCH_F32: RefCell<SoaScratch32> = RefCell::new(SoaScratch32::default());
}

/// Grows `buf` to at least `len` elements without shrinking its capacity;
/// newly exposed elements are zeroed, retained elements keep their values
/// (callers re-zero what they logically need).
#[inline]
fn ensure_len(buf: &mut Vec<f64>, len: usize) {
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
}

#[inline]
fn ensure_len_f32(buf: &mut Vec<f32>, len: usize) {
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
}

#[inline]
fn is_all_zero(re: &[f64], im: &[f64]) -> bool {
    re.iter().all(|&v| v == 0.0) && im.iter().all(|&v| v == 0.0)
}

/// `Σᵢ |F⁻¹(ifftshift(center_pad(Kᵢ ⊙ S, out)))|²` accumulated into `acc`,
/// where `S` is an already cropped, centered mask spectrum on the kernel grid
/// and `acc` has the output resolution. This is the fused SOCS synthesis
/// kernel: per optical kernel it materializes nothing — the product is
/// scattered straight to its post-shift position in a reused scratch plane,
/// only occupied rows are row-transformed, and each column transform feeds
/// `|z|²` directly into `acc`.
///
/// Accumulation visits kernels in slice order, so the result never depends on
/// a thread count, and matches the sequential AoS loop within the module's
/// ≤ 1e-12 equivalence contract.
///
/// # Panics
///
/// Panics if the kernels and spectrum do not share one shape, or `acc` is
/// smaller than the kernel grid.
pub fn accumulate_socs_intensity(
    kernels: &[ComplexMatrix],
    spectrum: &ComplexMatrix,
    acc: &mut RealMatrix,
) {
    accumulate_socs_intensity_with(simd_backend(), kernels, spectrum, acc);
}

/// [`accumulate_socs_intensity`] with an explicit SIMD backend — the
/// equivalence proptests A/B the backends through this without touching
/// process-global state.
pub fn accumulate_socs_intensity_with(
    backend: SimdBackend,
    kernels: &[ComplexMatrix],
    spectrum: &ComplexMatrix,
    acc: &mut RealMatrix,
) {
    record_socs_dispatch(backend, Precision::F64);
    let (kr, kc) = spectrum.shape();
    let (out_rows, out_cols) = acc.shape();
    assert!(
        kernels.iter().all(|k| k.shape() == (kr, kc)),
        "kernels must match the spectrum shape"
    );
    assert!(
        out_rows >= kr && out_cols >= kc,
        "output resolution must be at least the kernel grid"
    );

    // Pad placement (top-left of the kernel block inside the padded plane)
    // and the ifftshift rotation, fused into one index map: padded row
    // `r0 + u` lands at `(r0 + u + shift_rows) % out_rows` after the shift.
    let r0 = out_rows / 2 - kr / 2;
    let c0 = out_cols / 2 - kc / 2;
    let shift_rows = out_rows - out_rows / 2;
    let shift_cols = out_cols - out_cols / 2;
    let row_target = |u: usize| (r0 + u + shift_rows) % out_rows;
    let col_target = |v: usize| (c0 + v + shift_cols) % out_cols;

    let row_plan = SoaPlanned::for_len(out_cols);
    let col_plan = SoaPlanned::for_len(out_rows);

    SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        let s = &mut *scratch;
        ensure_len(&mut s.plane_re, out_rows * out_cols);
        ensure_len(&mut s.plane_im, out_rows * out_cols);
        ensure_len(&mut s.col_re, out_rows);
        ensure_len(&mut s.col_im, out_rows);
        ensure_len(&mut s.prod_re, kr * kc);
        ensure_len(&mut s.prod_im, kr * kc);
        ensure_len(&mut s.acc_t, out_rows * out_cols);
        // The column gather below reads only the occupied rows and assumes
        // everything else is zero; establish that once per call.
        s.plane_re[..out_rows * out_cols].fill(0.0);
        s.plane_im[..out_rows * out_cols].fill(0.0);
        s.acc_t[..out_rows * out_cols].fill(0.0);
        for kernel in kernels {
            // Kernel ⊙ spectrum on the small grid (AoS in, SoA out).
            for (idx, (k, sp)) in kernel.iter().zip(spectrum.iter()).enumerate() {
                s.prod_re[idx] = k.re * sp.re - k.im * sp.im;
                s.prod_im[idx] = k.re * sp.im + k.im * sp.re;
            }

            // Clear the occupied rows from the previous kernel, then scatter
            // the product into its padded + shifted position.
            for u in 0..kr {
                let ri = row_target(u);
                s.plane_re[ri * out_cols..(ri + 1) * out_cols].fill(0.0);
                s.plane_im[ri * out_cols..(ri + 1) * out_cols].fill(0.0);
            }
            for u in 0..kr {
                let ri = row_target(u);
                for v in 0..kc {
                    let cj = col_target(v);
                    s.plane_re[ri * out_cols + cj] = s.prod_re[u * kc + v];
                    s.plane_im[ri * out_cols + cj] = s.prod_im[u * kc + v];
                }
            }

            // Inverse row pass over the occupied rows only — every other row
            // of the padded plane is exactly zero, which the AoS engine also
            // skips (its zero-pruning), so this is not an approximation.
            for u in 0..kr {
                let ri = row_target(u);
                let row_re = &mut s.plane_re[ri * out_cols..(ri + 1) * out_cols];
                let row_im = &mut s.plane_im[ri * out_cols..(ri + 1) * out_cols];
                row_plan.inverse(backend, row_re, row_im);
            }

            // Column pass fused with the |z|² accumulate: gather the (sparse)
            // column, transform, and add the squared magnitudes into the
            // transposed accumulator (contiguous per column) — the
            // transformed column is never written back, so the plane stays
            // sparse for the next kernel.
            for j in 0..out_cols {
                s.col_re[..out_rows].fill(0.0);
                s.col_im[..out_rows].fill(0.0);
                for u in 0..kr {
                    let ri = row_target(u);
                    s.col_re[ri] = s.plane_re[ri * out_cols + j];
                    s.col_im[ri] = s.plane_im[ri * out_cols + j];
                }
                col_plan.inverse(
                    backend,
                    &mut s.col_re[..out_rows],
                    &mut s.col_im[..out_rows],
                );
                let acc_col = &mut s.acc_t[j * out_rows..(j + 1) * out_rows];
                soa::accumulate_abs_sq_with(
                    backend,
                    &s.col_re[..out_rows],
                    &s.col_im[..out_rows],
                    acc_col,
                );
            }
        }

        // Fold the transposed accumulator into the caller's buffer in one
        // pass. Per pixel this adds the fully kernel-ordered sum once, so the
        // result is bit-identical to accumulating row-major per kernel.
        let acc_data = acc.as_mut_slice();
        for i in 0..out_rows {
            let row = &mut acc_data[i * out_cols..(i + 1) * out_cols];
            for (j, slot) in row.iter_mut().enumerate() {
                *slot += s.acc_t[j * out_rows + i];
            }
        }
    });
}

/// Reduced-precision (`f32`) twin of [`accumulate_socs_intensity`] — the
/// engine behind `NITHO_PRECISION=f32`. The kernel products, padded plane,
/// Stockham passes and `|z|²` accumulate all run in single precision
/// (halving memory traffic and doubling SIMD lanes); only the final fold
/// into the caller's accumulator widens back to `f64`. Not bit-compatible
/// with the `f64` path: it is validated against the paper's accuracy bar
/// (PSNR > 24 dB, mIOU > 88% per mask family, pinned by
/// `tests/precision_f32.rs`) plus a per-pixel relative-error ceiling.
///
/// # Panics
///
/// Panics if the kernels and spectrum do not share one shape, or `acc` is
/// smaller than the kernel grid.
pub fn accumulate_socs_intensity_f32(
    kernels: &[ComplexMatrix],
    spectrum: &ComplexMatrix,
    acc: &mut RealMatrix,
) {
    accumulate_socs_intensity_f32_with(simd_backend(), kernels, spectrum, acc);
}

/// [`accumulate_socs_intensity_f32`] with an explicit SIMD backend.
pub fn accumulate_socs_intensity_f32_with(
    backend: SimdBackend,
    kernels: &[ComplexMatrix],
    spectrum: &ComplexMatrix,
    acc: &mut RealMatrix,
) {
    record_socs_dispatch(backend, Precision::F32);
    let (kr, kc) = spectrum.shape();
    let (out_rows, out_cols) = acc.shape();
    assert!(
        kernels.iter().all(|k| k.shape() == (kr, kc)),
        "kernels must match the spectrum shape"
    );
    assert!(
        out_rows >= kr && out_cols >= kc,
        "output resolution must be at least the kernel grid"
    );

    let r0 = out_rows / 2 - kr / 2;
    let c0 = out_cols / 2 - kc / 2;
    let shift_rows = out_rows - out_rows / 2;
    let shift_cols = out_cols - out_cols / 2;
    let row_target = |u: usize| (r0 + u + shift_rows) % out_rows;
    let col_target = |v: usize| (c0 + v + shift_cols) % out_cols;

    let row_plan = SoaPlanned::for_len(out_cols);
    let col_plan = SoaPlanned::for_len(out_rows);

    SCRATCH_F32.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        let s = &mut *scratch;
        ensure_len_f32(&mut s.plane_re, out_rows * out_cols);
        ensure_len_f32(&mut s.plane_im, out_rows * out_cols);
        ensure_len_f32(&mut s.col_re, out_rows);
        ensure_len_f32(&mut s.col_im, out_rows);
        ensure_len_f32(&mut s.prod_re, kr * kc);
        ensure_len_f32(&mut s.prod_im, kr * kc);
        ensure_len_f32(&mut s.spec_re, kr * kc);
        ensure_len_f32(&mut s.spec_im, kr * kc);
        ensure_len_f32(&mut s.acc_t, out_rows * out_cols);
        s.plane_re[..out_rows * out_cols].fill(0.0);
        s.plane_im[..out_rows * out_cols].fill(0.0);
        s.acc_t[..out_rows * out_cols].fill(0.0);
        // Narrow the spectrum once per call; kernels narrow per element in
        // the product loop below.
        for (idx, sp) in spectrum.iter().enumerate() {
            s.spec_re[idx] = sp.re as f32;
            s.spec_im[idx] = sp.im as f32;
        }
        for kernel in kernels {
            for (idx, k) in kernel.iter().enumerate() {
                let (ar, ai) = (k.re as f32, k.im as f32);
                let (br, bi) = (s.spec_re[idx], s.spec_im[idx]);
                s.prod_re[idx] = ar * br - ai * bi;
                s.prod_im[idx] = ar * bi + ai * br;
            }

            for u in 0..kr {
                let ri = row_target(u);
                s.plane_re[ri * out_cols..(ri + 1) * out_cols].fill(0.0);
                s.plane_im[ri * out_cols..(ri + 1) * out_cols].fill(0.0);
            }
            for u in 0..kr {
                let ri = row_target(u);
                for v in 0..kc {
                    let cj = col_target(v);
                    s.plane_re[ri * out_cols + cj] = s.prod_re[u * kc + v];
                    s.plane_im[ri * out_cols + cj] = s.prod_im[u * kc + v];
                }
            }

            for u in 0..kr {
                let ri = row_target(u);
                let row_re = &mut s.plane_re[ri * out_cols..(ri + 1) * out_cols];
                let row_im = &mut s.plane_im[ri * out_cols..(ri + 1) * out_cols];
                row_plan.inverse_f32(backend, row_re, row_im);
            }

            for j in 0..out_cols {
                s.col_re[..out_rows].fill(0.0);
                s.col_im[..out_rows].fill(0.0);
                for u in 0..kr {
                    let ri = row_target(u);
                    s.col_re[ri] = s.plane_re[ri * out_cols + j];
                    s.col_im[ri] = s.plane_im[ri * out_cols + j];
                }
                col_plan.inverse_f32(
                    backend,
                    &mut s.col_re[..out_rows],
                    &mut s.col_im[..out_rows],
                );
                let acc_col = &mut s.acc_t[j * out_rows..(j + 1) * out_rows];
                soa::accumulate_abs_sq_f32_with(
                    backend,
                    &s.col_re[..out_rows],
                    &s.col_im[..out_rows],
                    acc_col,
                );
            }
        }

        // Widen once per pixel while folding into the caller's f64 buffer.
        let acc_data = acc.as_mut_slice();
        for i in 0..out_rows {
            let row = &mut acc_data[i * out_cols..(i + 1) * out_cols];
            for (j, slot) in row.iter_mut().enumerate() {
                *slot += f64::from(s.acc_t[j * out_rows + i]);
            }
        }
    });
}

/// Inverse 2-D FFT of `K` same-shape spectra through one shared row/column
/// pass setup: the plans are resolved once, and all transforms run in the
/// thread's split-complex scratch (no per-matrix working allocations — only
/// the returned matrices are fresh).
///
/// Matches [`ifft2`](crate::ifft2) on every plane within the module's
/// ≤ 1e-12 equivalence contract.
///
/// # Panics
///
/// Panics if the spectra do not all share one shape.
pub fn ifft2_batch(spectra: &[ComplexMatrix]) -> Vec<ComplexMatrix> {
    let Some(first) = spectra.first() else {
        return Vec::new();
    };
    let (rows, cols) = first.shape();
    assert!(
        spectra.iter().all(|m| m.shape() == (rows, cols)),
        "batch spectra must share one shape"
    );
    let row_plan = SoaPlanned::for_len(cols);
    let col_plan = SoaPlanned::for_len(rows);
    let backend = simd_backend();

    SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        let s = &mut *scratch;
        ensure_len(&mut s.plane_re, rows * cols);
        ensure_len(&mut s.plane_im, rows * cols);
        ensure_len(&mut s.col_re, rows);
        ensure_len(&mut s.col_im, rows);

        spectra
            .iter()
            .map(|m| {
                for (idx, z) in m.iter().enumerate() {
                    s.plane_re[idx] = z.re;
                    s.plane_im[idx] = z.im;
                }
                for r in 0..rows {
                    let row_re = &mut s.plane_re[r * cols..(r + 1) * cols];
                    let row_im = &mut s.plane_im[r * cols..(r + 1) * cols];
                    if !is_all_zero(row_re, row_im) {
                        row_plan.inverse(backend, row_re, row_im);
                    }
                }
                for j in 0..cols {
                    for i in 0..rows {
                        s.col_re[i] = s.plane_re[i * cols + j];
                        s.col_im[i] = s.plane_im[i * cols + j];
                    }
                    if is_all_zero(&s.col_re[..rows], &s.col_im[..rows]) {
                        continue;
                    }
                    col_plan.inverse(backend, &mut s.col_re[..rows], &mut s.col_im[..rows]);
                    for i in 0..rows {
                        s.plane_re[i * cols + j] = s.col_re[i];
                        s.plane_im[i * cols + j] = s.col_im[i];
                    }
                }
                Matrix::from_fn(rows, cols, |i, j| {
                    litho_math::Complex64::new(s.plane_re[i * cols + j], s.plane_im[i * cols + j])
                })
            })
            .collect()
    })
}

/// The centered, cropped mask spectrum
/// `center_crop(fftshift(fft2(mask)), out_rows × out_cols)` — Algorithm 1
/// lines 6–7 — computed without materializing the lifted complex mask, the
/// full spectrum copy, or the shifted matrix: the full-resolution transform
/// runs in the thread's split-complex scratch and only the `out_rows ×
/// out_cols` window around DC is gathered out (the crop/shift fold into one
/// index map). Matches the unfused composition within the module's ≤ 1e-12
/// (relative) equivalence contract.
///
/// # Panics
///
/// Panics if the requested output is larger than the mask.
pub fn cropped_centered_spectrum(
    mask: &RealMatrix,
    out_rows: usize,
    out_cols: usize,
) -> ComplexMatrix {
    let (rows, cols) = mask.shape();
    assert!(
        out_rows <= rows && out_cols <= cols,
        "crop {out_rows}x{out_cols} exceeds the {rows}x{cols} mask"
    );
    let row_plan = SoaPlanned::for_len(cols);
    let col_plan = SoaPlanned::for_len(rows);
    let backend = simd_backend();

    SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        let s = &mut *scratch;
        ensure_len(&mut s.plane_re, rows * cols);
        ensure_len(&mut s.plane_im, rows * cols);
        ensure_len(&mut s.col_re, rows);
        ensure_len(&mut s.col_im, rows);
        s.plane_re[..rows * cols].copy_from_slice(mask.as_slice());
        s.plane_im[..rows * cols].fill(0.0);

        for r in 0..rows {
            let row_re = &mut s.plane_re[r * cols..(r + 1) * cols];
            let row_im = &mut s.plane_im[r * cols..(r + 1) * cols];
            if !is_all_zero(row_re, row_im) {
                row_plan.forward(backend, row_re, row_im);
            }
        }
        // fftshift then crop, folded: output bin (i, j) reads shifted bin
        // (r0 + i, c0 + j), which is unshifted bin ((r0 + i + rows − rows/2)
        // mod rows, …). Only the out_cols retained frequency columns feed the
        // crop, so the column pass transforms exactly those — for a kernel
        // grid much smaller than the tile this prunes most of the pass.
        let r0 = rows / 2 - out_rows / 2;
        let c0 = cols / 2 - out_cols / 2;
        for j in 0..out_cols {
            let sc = (c0 + j + cols - cols / 2) % cols;
            for i in 0..rows {
                s.col_re[i] = s.plane_re[i * cols + sc];
                s.col_im[i] = s.plane_im[i * cols + sc];
            }
            if is_all_zero(&s.col_re[..rows], &s.col_im[..rows]) {
                continue;
            }
            col_plan.forward(backend, &mut s.col_re[..rows], &mut s.col_im[..rows]);
            for i in 0..rows {
                s.plane_re[i * cols + sc] = s.col_re[i];
                s.plane_im[i * cols + sc] = s.col_im[i];
            }
        }

        Matrix::from_fn(out_rows, out_cols, |i, j| {
            let sr = (r0 + i + rows - rows / 2) % rows;
            let sc = (c0 + j + cols - cols / 2) % cols;
            litho_math::Complex64::new(s.plane_re[sr * cols + sc], s.plane_im[sr * cols + sc])
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{centered_spectrum, ifft2, ifftshift};
    use litho_math::util::{center_crop, center_pad};
    use litho_math::{Complex64, DeterministicRng};

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> ComplexMatrix {
        let mut rng = DeterministicRng::new(seed);
        ComplexMatrix::from_fn(rows, cols, |_, _| rng.normal_complex(0.0, 1.0))
    }

    fn random_mask(rows: usize, cols: usize, seed: u64) -> RealMatrix {
        let mut rng = DeterministicRng::new(seed);
        RealMatrix::from_fn(rows, cols, |_, _| {
            if rng.uniform(0.0, 1.0) < 0.4 {
                1.0
            } else {
                0.0
            }
        })
    }

    /// The AoS reference chain for one kernel.
    fn aos_term(kernel: &ComplexMatrix, spectrum: &ComplexMatrix, out: usize) -> RealMatrix {
        let product = kernel.hadamard(spectrum);
        let padded = center_pad(&product, out, out);
        ifft2(&ifftshift(&padded)).abs_sq()
    }

    #[test]
    fn fused_socs_matches_aos_chain() {
        for &(k_side, out) in &[(5usize, 16usize), (9, 32), (7, 24), (9, 9)] {
            let kernels: Vec<ComplexMatrix> = (0..4)
                .map(|i| random_matrix(k_side, k_side, 100 + i))
                .collect();
            let spectrum = random_matrix(k_side, k_side, 999);
            let mut acc = RealMatrix::zeros(out, out);
            accumulate_socs_intensity(&kernels, &spectrum, &mut acc);

            let mut reference = RealMatrix::zeros(out, out);
            for kernel in &kernels {
                reference += &aos_term(kernel, &spectrum, out);
            }
            let max_err = acc.zip_map(&reference, |a, b| (a - b).abs()).max();
            assert!(max_err <= 1e-12, "k={k_side} out={out}: max err {max_err}");
        }
    }

    #[test]
    fn fused_socs_handles_non_power_of_two_outputs() {
        let kernels: Vec<ComplexMatrix> = (0..3).map(|i| random_matrix(5, 5, 30 + i)).collect();
        let spectrum = random_matrix(5, 5, 77);
        let mut acc = RealMatrix::zeros(12, 20);
        accumulate_socs_intensity(&kernels, &spectrum, &mut acc);
        let mut reference = RealMatrix::zeros(12, 20);
        for kernel in &kernels {
            let product = kernel.hadamard(&spectrum);
            let padded = center_pad(&product, 12, 20);
            reference += &ifft2(&ifftshift(&padded)).abs_sq();
        }
        let max_err = acc.zip_map(&reference, |a, b| (a - b).abs()).max();
        assert!(max_err <= 1e-12, "max err {max_err}");
    }

    #[test]
    fn ifft2_batch_matches_per_matrix_ifft2() {
        let spectra: Vec<ComplexMatrix> = (0..5).map(|i| random_matrix(12, 10, 40 + i)).collect();
        let batch = ifft2_batch(&spectra);
        assert_eq!(batch.len(), 5);
        for (fast, m) in batch.iter().zip(&spectra) {
            let reference = ifft2(m);
            for (a, b) in fast.iter().zip(reference.iter()) {
                assert!((*a - *b).abs() <= 1e-12);
            }
        }
        assert!(ifft2_batch(&[]).is_empty());
    }

    #[test]
    fn cropped_centered_spectrum_matches_unfused_chain() {
        for &(rows, cols, kr, kc) in &[
            (16usize, 16usize, 5usize, 5usize),
            (32, 32, 9, 9),
            (12, 20, 7, 5),
            (15, 9, 15, 9),
        ] {
            let mask = random_mask(rows, cols, (rows * 31 + cols) as u64);
            let fused = cropped_centered_spectrum(&mask, kr, kc);
            let reference = center_crop(&centered_spectrum(&mask), kr, kc);
            // Unnormalized forward spectra scale with the mask sum, so the
            // roundoff bound is relative to that magnitude.
            let tol = 1e-12 * (1.0 + mask.sum());
            for (a, b) in fused.iter().zip(reference.iter()) {
                assert!((*a - *b).abs() <= tol, "{rows}x{cols}->{kr}x{kc}");
            }
        }
    }

    #[test]
    fn dark_mask_spectrum_is_zero() {
        let mask = RealMatrix::zeros(16, 16);
        let spec = cropped_centered_spectrum(&mask, 7, 7);
        assert!(spec.iter().all(|z| *z == Complex64::ZERO));
    }

    #[test]
    #[should_panic(expected = "at least the kernel grid")]
    fn undersized_accumulator_panics() {
        let kernels = vec![random_matrix(9, 9, 1)];
        let spectrum = random_matrix(9, 9, 2);
        let mut acc = RealMatrix::zeros(8, 8);
        accumulate_socs_intensity(&kernels, &spectrum, &mut acc);
    }

    #[test]
    #[should_panic(expected = "match the spectrum shape")]
    fn mismatched_kernel_shape_panics() {
        let kernels = vec![random_matrix(7, 7, 1)];
        let spectrum = random_matrix(9, 9, 2);
        let mut acc = RealMatrix::zeros(16, 16);
        accumulate_socs_intensity(&kernels, &spectrum, &mut acc);
    }
}
