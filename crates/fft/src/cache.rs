//! Process-wide FFT plan cache and the Bluestein chirp-z plan.
//!
//! SOCS aerial-image synthesis performs the same-size transform once per
//! optical kernel per mask — thousands of times per training epoch — so the
//! module-level [`fft`](crate::fft)/[`ifft2`](crate::ifft2) entry points route
//! through plans cached here instead of recomputing twiddle factors and
//! bit-reversal tables on every call:
//!
//! * [`plan_for`] returns the shared radix-2 [`FftPlan`] for a power-of-two
//!   length.
//! * [`bluestein_plan_for`] returns the shared [`BluesteinPlan`] for any other
//!   length, with the chirp and the forward spectrum of the chirp-convolution
//!   kernel (the "B spectrum") precomputed once.
//!
//! Plans are immutable after construction and shared as `Arc`s behind a
//! `Mutex`-guarded map, so every thread — including the short-lived scoped
//! workers of `litho_parallel` — sees the same cache. Per-transform scratch is
//! a thread-local buffer reused across calls on long-lived threads.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use litho_math::simd::{simd_backend, SimdBackend};
use litho_math::{soa, Complex64};
use litho_obs::Counter;

use crate::plan::FftPlan;

static RADIX2_PLANS: OnceLock<Mutex<HashMap<usize, Arc<FftPlan>>>> = OnceLock::new();
static BLUESTEIN_PLANS: OnceLock<Mutex<HashMap<usize, Arc<BluesteinPlan>>>> = OnceLock::new();

/// Process-wide mirror of the per-thread transform counters: total 1-D
/// radix-2 kernel executions across all threads. The thread-locals stay the
/// exact accounting primitive for tests; this registry counter is the
/// operational aggregate surfaced on `/metrics`.
static FFT_1D_TRANSFORMS_TOTAL: Counter = Counter::new(
    "litho_fft_1d_transforms_total",
    "1-D radix-2 FFT kernel executions across all threads",
);
static PLAN_CACHE_HITS_TOTAL: Counter = Counter::new(
    "litho_fft_plan_cache_hits_total",
    "FFT plan-cache lookups that found an existing plan",
);
static PLAN_CACHE_MISSES_TOTAL: Counter = Counter::new(
    "litho_fft_plan_cache_misses_total",
    "FFT plan-cache lookups that had to build a new plan",
);

/// Registers this crate's metrics with the `litho_obs` registry. Idempotent.
pub fn register_metrics() {
    litho_obs::register(&FFT_1D_TRANSFORMS_TOTAL);
    litho_obs::register(&PLAN_CACHE_HITS_TOTAL);
    litho_obs::register(&PLAN_CACHE_MISSES_TOTAL);
    crate::soa::register_dispatch_metrics();
}

/// Process-wide total of 1-D radix-2 kernel executions (all threads).
pub fn total_fft_1d_transforms() -> u64 {
    FFT_1D_TRANSFORMS_TOTAL.get()
}

/// Process-wide plan-cache hit count.
pub fn plan_cache_hits() -> u64 {
    PLAN_CACHE_HITS_TOTAL.get()
}

/// Process-wide plan-cache miss count (one per plan actually built).
pub fn plan_cache_misses() -> u64 {
    PLAN_CACHE_MISSES_TOTAL.get()
}

thread_local! {
    /// Reused Bluestein convolution scratch (length `m` of the most recent
    /// plan); avoids one heap allocation per transform on the hot path.
    static SCRATCH: RefCell<Vec<Complex64>> = const { RefCell::new(Vec::new()) };
    /// Split-complex Bluestein convolution scratch for the SoA path.
    static SCRATCH_SOA: RefCell<(Vec<f64>, Vec<f64>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
    /// f32 twin of [`SCRATCH_SOA`] for the reduced-precision path.
    static SCRATCH_SOA_F32: RefCell<(Vec<f32>, Vec<f32>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
    /// Number of radix-2 kernel executions performed *by this thread* (both
    /// layouts; zero-pruned rows/columns are never counted). Thread-local so
    /// concurrently running tests cannot disturb each other's accounting.
    static FFT_1D_TRANSFORMS: Cell<u64> = const { Cell::new(0) };
    /// Number of plan-cache lookups performed by this thread.
    static PLAN_REQUESTS: Cell<u64> = const { Cell::new(0) };
}

/// Number of 1-D radix-2 kernel executions this thread has performed since it
/// started (monotone). Diff two readings around a region of interest to count
/// the transforms it actually executed — the spectrum-reuse regression tests
/// use this to pin the per-condition FFT budget of the process-window paths.
///
/// The counter is thread-local: transforms run by `litho_parallel` workers on
/// other threads are not included, so measure under
/// `litho_parallel::with_threads(1, …)` for exact totals.
pub fn thread_fft_1d_transforms() -> u64 {
    FFT_1D_TRANSFORMS.with(Cell::get)
}

/// Number of plan-cache lookups ([`plan_for`] / [`bluestein_plan_for`]) this
/// thread has performed since it started (monotone; hits and misses both
/// count — after warm-up every lookup is a hit).
pub fn thread_plan_requests() -> u64 {
    PLAN_REQUESTS.with(Cell::get)
}

/// Records `n` executed 1-D transforms for this thread (and the process-wide
/// registry mirror). The thread-local update is unconditional so the
/// spectrum-reuse pins hold regardless of `NITHO_METRICS`.
pub(crate) fn record_1d_transforms(n: u64) {
    FFT_1D_TRANSFORMS.with(|c| c.set(c.get() + n));
    FFT_1D_TRANSFORMS_TOTAL.add(n);
}

fn record_plan_request() {
    PLAN_REQUESTS.with(|c| c.set(c.get() + 1));
}

/// Returns the shared, cached [`FftPlan`] for a power-of-two length.
///
/// # Panics
///
/// Panics if `len` is not a power of two (see [`FftPlan::new`]).
pub fn plan_for(len: usize) -> Arc<FftPlan> {
    record_plan_request();
    let cache = RADIX2_PLANS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("FFT plan cache poisoned");
    if map.contains_key(&len) {
        PLAN_CACHE_HITS_TOTAL.inc();
    } else {
        PLAN_CACHE_MISSES_TOTAL.inc();
    }
    Arc::clone(
        map.entry(len)
            .or_insert_with(|| Arc::new(FftPlan::new(len))),
    )
}

/// Returns the shared, cached [`BluesteinPlan`] for an arbitrary length.
///
/// # Panics
///
/// Panics if `len == 0`.
pub fn bluestein_plan_for(len: usize) -> Arc<BluesteinPlan> {
    record_plan_request();
    let cache = BLUESTEIN_PLANS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("Bluestein plan cache poisoned");
    if map.contains_key(&len) {
        PLAN_CACHE_HITS_TOTAL.inc();
    } else {
        PLAN_CACHE_MISSES_TOTAL.inc();
    }
    Arc::clone(
        map.entry(len)
            .or_insert_with(|| Arc::new(BluesteinPlan::new(len))),
    )
}

/// Per-direction Bluestein tables: the chirp `w_k = e^{±iπ k²/n}` and the
/// forward FFT of the chirp convolution kernel.
#[derive(Debug, Clone)]
struct ChirpTables {
    chirp: Vec<Complex64>,
    b_spectrum: Vec<Complex64>,
    /// Split-complex copies (same values) for the SoA execution path.
    chirp_re: Vec<f64>,
    chirp_im: Vec<f64>,
    b_spectrum_re: Vec<f64>,
    b_spectrum_im: Vec<f64>,
    /// Narrowed copies for the reduced-precision (`f32`) path.
    chirp_re_f32: Vec<f32>,
    chirp_im_f32: Vec<f32>,
    b_spectrum_re_f32: Vec<f32>,
    b_spectrum_im_f32: Vec<f32>,
}

/// A reusable chirp-z (Bluestein) DFT plan for one fixed length.
///
/// Bluestein's identity `nk = (n² + k² - (k-n)²)/2` turns an arbitrary-length
/// DFT into a cyclic convolution of length `m = next_pow2(2n-1)`, evaluated
/// with radix-2 FFTs. Everything that does not depend on the input — the
/// chirp for both directions, the padded convolution kernel's spectrum, and
/// the inner power-of-two plan — is computed once here and reused for every
/// transform.
///
/// # Example
///
/// ```
/// use litho_fft::BluesteinPlan;
/// use litho_math::Complex64;
///
/// let plan = BluesteinPlan::new(5);
/// let signal: Vec<Complex64> = (0..5).map(|i| Complex64::new(i as f64, 0.0)).collect();
/// let mut data = signal.clone();
/// plan.forward_in_place(&mut data);
/// plan.inverse_in_place(&mut data);
/// for (a, b) in data.iter().zip(signal.iter()) {
///     assert!((*a - *b).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct BluesteinPlan {
    len: usize,
    m: usize,
    inner: Arc<FftPlan>,
    forward: ChirpTables,
    inverse: ChirpTables,
}

impl BluesteinPlan {
    /// Creates a plan for transforms of length `len` (any positive length).
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "BluesteinPlan requires a positive length");
        let m = (2 * len - 1).next_power_of_two();
        let inner = plan_for(m);
        let forward = Self::tables(len, m, &inner, -1.0);
        let inverse = Self::tables(len, m, &inner, 1.0);
        Self {
            len,
            m,
            inner,
            forward,
            inverse,
        }
    }

    fn tables(len: usize, m: usize, inner: &FftPlan, sign: f64) -> ChirpTables {
        // Chirp: w_k = e^{sign·iπ k² / n}, with k² reduced mod 2n to keep the
        // angle argument small for large k.
        let chirp: Vec<Complex64> = (0..len)
            .map(|k| {
                let k2 = (k as u128 * k as u128) % (2 * len as u128);
                Complex64::cis(sign * std::f64::consts::PI * k2 as f64 / len as f64)
            })
            .collect();

        let mut b = vec![Complex64::ZERO; m];
        b[0] = chirp[0].conj();
        for k in 1..len {
            let val = chirp[k].conj();
            b[k] = val;
            b[m - k] = val;
        }
        inner.forward_in_place(&mut b);
        ChirpTables {
            chirp_re: chirp.iter().map(|z| z.re).collect(),
            chirp_im: chirp.iter().map(|z| z.im).collect(),
            b_spectrum_re: b.iter().map(|z| z.re).collect(),
            b_spectrum_im: b.iter().map(|z| z.im).collect(),
            chirp_re_f32: chirp.iter().map(|z| z.re as f32).collect(),
            chirp_im_f32: chirp.iter().map(|z| z.im as f32).collect(),
            b_spectrum_re_f32: b.iter().map(|z| z.re as f32).collect(),
            b_spectrum_im_f32: b.iter().map(|z| z.im as f32).collect(),
            chirp,
            b_spectrum: b,
        }
    }

    /// Transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always `false`; plans have positive length by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Length of the internal power-of-two convolution.
    pub fn convolution_len(&self) -> usize {
        self.m
    }

    /// In-place forward DFT (unnormalized).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the planned length.
    pub fn forward_in_place(&self, data: &mut [Complex64]) {
        self.run(data, &self.forward);
    }

    /// In-place inverse DFT (normalized by `1/N`).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the planned length.
    pub fn inverse_in_place(&self, data: &mut [Complex64]) {
        self.run(data, &self.inverse);
        let scale = 1.0 / self.len as f64;
        for z in data.iter_mut() {
            *z *= scale;
        }
    }

    /// In-place forward DFT (unnormalized) over a split-complex `(re, im)`
    /// buffer pair. The inner power-of-two passes run on the Stockham SoA
    /// engine, so results agree with [`BluesteinPlan::forward_in_place`] to
    /// roundoff (≤ 1e-12, same contract as
    /// [`FftPlan::forward_soa_in_place`](crate::FftPlan::forward_soa_in_place)),
    /// not bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if either slice length does not match the planned length.
    pub fn forward_soa_in_place(&self, re: &mut [f64], im: &mut [f64]) {
        self.run_soa(simd_backend(), re, im, &self.forward);
    }

    /// [`BluesteinPlan::forward_soa_in_place`] with an explicit SIMD backend
    /// (the in-place entry point resolves `NITHO_SIMD` instead).
    pub fn forward_soa_with(&self, backend: SimdBackend, re: &mut [f64], im: &mut [f64]) {
        self.run_soa(backend, re, im, &self.forward);
    }

    /// In-place inverse DFT (normalized by `1/N`) over a split-complex
    /// `(re, im)` buffer pair (same ≤ 1e-12 cross-layout contract as
    /// [`BluesteinPlan::forward_soa_in_place`]).
    ///
    /// # Panics
    ///
    /// Panics if either slice length does not match the planned length.
    pub fn inverse_soa_in_place(&self, re: &mut [f64], im: &mut [f64]) {
        self.inverse_soa_with(simd_backend(), re, im);
    }

    /// [`BluesteinPlan::inverse_soa_in_place`] with an explicit SIMD backend.
    pub fn inverse_soa_with(&self, backend: SimdBackend, re: &mut [f64], im: &mut [f64]) {
        self.run_soa(backend, re, im, &self.inverse);
        let scale = 1.0 / self.len as f64;
        soa::scale_in_place_with(backend, re, im, scale);
    }

    /// f32 forward DFT for the reduced-precision path (unnormalized).
    ///
    /// # Panics
    ///
    /// Panics if either slice length does not match the planned length.
    pub fn forward_soa_f32_with(&self, backend: SimdBackend, re: &mut [f32], im: &mut [f32]) {
        self.run_soa_f32(backend, re, im, &self.forward);
    }

    /// f32 inverse DFT for the reduced-precision path (normalized by `1/N`).
    ///
    /// # Panics
    ///
    /// Panics if either slice length does not match the planned length.
    pub fn inverse_soa_f32_with(&self, backend: SimdBackend, re: &mut [f32], im: &mut [f32]) {
        self.run_soa_f32(backend, re, im, &self.inverse);
        let scale = 1.0 / self.len as f32;
        soa::scale_in_place_f32_with(backend, re, im, scale);
    }

    fn run_soa(&self, backend: SimdBackend, re: &mut [f64], im: &mut [f64], tables: &ChirpTables) {
        assert_eq!(re.len(), self.len, "buffer length does not match plan");
        assert_eq!(im.len(), self.len, "buffer length does not match plan");
        SCRATCH_SOA.with(|scratch| {
            let mut borrow = scratch.borrow_mut();
            let (ar, ai) = &mut *borrow;
            ar.clear();
            ar.resize(self.m, 0.0);
            ai.clear();
            ai.resize(self.m, 0.0);
            // a = x ⊙ chirp, zero-padded to the convolution length.
            soa::mul_into_with(
                backend,
                re,
                im,
                &tables.chirp_re,
                &tables.chirp_im,
                &mut ar[..self.len],
                &mut ai[..self.len],
            );
            self.inner.forward_soa_with(backend, ar, ai);
            for k in 0..self.m {
                let (r, i) = (ar[k], ai[k]);
                ar[k] = r * tables.b_spectrum_re[k] - i * tables.b_spectrum_im[k];
                ai[k] = r * tables.b_spectrum_im[k] + i * tables.b_spectrum_re[k];
            }
            // The inner inverse includes the 1/m convolution normalization.
            self.inner.inverse_soa_with(backend, ar, ai);
            soa::mul_into_with(
                backend,
                &ar[..self.len],
                &ai[..self.len],
                &tables.chirp_re,
                &tables.chirp_im,
                re,
                im,
            );
        });
    }

    fn run_soa_f32(
        &self,
        backend: SimdBackend,
        re: &mut [f32],
        im: &mut [f32],
        tables: &ChirpTables,
    ) {
        assert_eq!(re.len(), self.len, "buffer length does not match plan");
        assert_eq!(im.len(), self.len, "buffer length does not match plan");
        SCRATCH_SOA_F32.with(|scratch| {
            let mut borrow = scratch.borrow_mut();
            let (ar, ai) = &mut *borrow;
            ar.clear();
            ar.resize(self.m, 0.0);
            ai.clear();
            ai.resize(self.m, 0.0);
            soa::mul_into_f32_with(
                backend,
                re,
                im,
                &tables.chirp_re_f32,
                &tables.chirp_im_f32,
                &mut ar[..self.len],
                &mut ai[..self.len],
            );
            self.inner.forward_soa_f32_with(backend, ar, ai);
            for k in 0..self.m {
                let (r, i) = (ar[k], ai[k]);
                ar[k] = r * tables.b_spectrum_re_f32[k] - i * tables.b_spectrum_im_f32[k];
                ai[k] = r * tables.b_spectrum_im_f32[k] + i * tables.b_spectrum_re_f32[k];
            }
            self.inner.inverse_soa_f32_with(backend, ar, ai);
            soa::mul_into_f32_with(
                backend,
                &ar[..self.len],
                &ai[..self.len],
                &tables.chirp_re_f32,
                &tables.chirp_im_f32,
                re,
                im,
            );
        });
    }

    fn run(&self, data: &mut [Complex64], tables: &ChirpTables) {
        assert_eq!(data.len(), self.len, "buffer length does not match plan");
        SCRATCH.with(|scratch| {
            let mut a = scratch.borrow_mut();
            a.clear();
            a.resize(self.m, Complex64::ZERO);
            for (slot, (&x, &w)) in a.iter_mut().zip(data.iter().zip(tables.chirp.iter())) {
                *slot = x * w;
            }
            self.inner.forward_in_place(&mut a);
            for (slot, &bs) in a.iter_mut().zip(tables.b_spectrum.iter()) {
                *slot *= bs;
            }
            // The inner inverse includes the 1/m convolution normalization.
            self.inner.inverse_in_place(&mut a);
            for (out, (&conv, &w)) in data.iter_mut().zip(a.iter().zip(tables.chirp.iter())) {
                *out = conv * w;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft_reference;
    use litho_math::DeterministicRng;

    fn random_signal(n: usize, seed: u64) -> Vec<Complex64> {
        let mut rng = DeterministicRng::new(seed);
        (0..n).map(|_| rng.normal_complex(0.0, 1.0)).collect()
    }

    #[test]
    fn cached_plans_are_shared() {
        let a = plan_for(32);
        let b = plan_for(32);
        assert!(Arc::ptr_eq(&a, &b));
        let c = bluestein_plan_for(15);
        let d = bluestein_plan_for(15);
        assert!(Arc::ptr_eq(&c, &d));
        assert_eq!(c.len(), 15);
        assert!(!c.is_empty());
        assert_eq!(c.convolution_len(), 32);
    }

    #[test]
    fn bluestein_plan_matches_reference_dft() {
        for &n in &[2usize, 3, 5, 7, 11, 13, 21, 33, 100] {
            let x = random_signal(n, 1000 + n as u64);
            let mut fwd = x.clone();
            bluestein_plan_for(n).forward_in_place(&mut fwd);
            let slow = dft_reference(&x, false);
            for (a, b) in fwd.iter().zip(slow.iter()) {
                assert!((*a - *b).abs() < 1e-8, "n={n}");
            }
        }
    }

    #[test]
    fn bluestein_plan_inverse_round_trip() {
        for &n in &[1usize, 3, 5, 12, 17, 31] {
            let x = random_signal(n, 2000 + n as u64);
            let plan = BluesteinPlan::new(n);
            let mut data = x.clone();
            plan.forward_in_place(&mut data);
            plan.inverse_in_place(&mut data);
            for (a, b) in data.iter().zip(x.iter()) {
                assert!((*a - *b).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn bluestein_length_one_is_identity() {
        let plan = BluesteinPlan::new(1);
        let original = Complex64::new(-0.75, 4.0);
        let mut data = vec![original];
        plan.forward_in_place(&mut data);
        assert!((data[0] - original).abs() < 1e-15);
        plan.inverse_in_place(&mut data);
        assert!((data[0] - original).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "does not match plan")]
    fn wrong_buffer_length_panics() {
        let plan = BluesteinPlan::new(5);
        let mut data = vec![Complex64::ZERO; 4];
        plan.forward_in_place(&mut data);
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn zero_length_panics() {
        let _ = BluesteinPlan::new(0);
    }
}
