//! Fast Fourier transforms for the Nitho lithography stack.
//!
//! The Hopkins imaging model and the Nitho training loop live almost entirely
//! in the spatial-frequency domain, so this crate provides the transforms the
//! rest of the workspace needs without external dependencies:
//!
//! * [`fft`] / [`ifft`] — 1-D complex transforms. Power-of-two lengths use an
//!   iterative radix-2 Cooley–Tukey kernel; every other length goes through
//!   Bluestein's chirp-z algorithm, so *any* size works.
//! * [`fft2`] / [`ifft2`] — separable row–column 2-D transforms over
//!   [`ComplexMatrix`].
//! * [`fftshift`] / [`ifftshift`] — move the DC bin to / from the matrix
//!   center, matching the `fftshift(fft2(M))` convention of the paper's
//!   Algorithm 1.
//!
//! Conventions: the forward transform is un-normalized
//! (`X_k = Σ x_n e^{-2πi nk/N}`), the inverse divides by `N`, so
//! `ifft(fft(x)) == x`.
//!
//! # Example
//!
//! ```
//! use litho_fft::{fft, ifft};
//! use litho_math::Complex64;
//!
//! let signal: Vec<Complex64> = (0..8).map(|i| Complex64::new(i as f64, 0.0)).collect();
//! let spectrum = fft(&signal);
//! let back = ifft(&spectrum);
//! for (a, b) in signal.iter().zip(back.iter()) {
//!     assert!((*a - *b).abs() < 1e-9);
//! }
//! ```

#![forbid(unsafe_code)]

use litho_math::{Complex64, ComplexMatrix, Matrix, RealMatrix};

mod plan;
pub use plan::FftPlan;

/// Direction of a transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Forward,
    Inverse,
}

impl Direction {
    fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }
}

/// Forward 1-D FFT of a complex slice. Works for any length.
pub fn fft(input: &[Complex64]) -> Vec<Complex64> {
    let mut data = input.to_vec();
    transform_in_place(&mut data, Direction::Forward);
    data
}

/// Inverse 1-D FFT (normalized by `1/N`). Works for any length.
pub fn ifft(input: &[Complex64]) -> Vec<Complex64> {
    let mut data = input.to_vec();
    transform_in_place(&mut data, Direction::Inverse);
    data
}

/// Naive O(N²) reference DFT; used by tests and as the base case for very
/// short lengths.
pub fn dft_reference(input: &[Complex64], inverse: bool) -> Vec<Complex64> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut out = vec![Complex64::ZERO; n];
    for (k, out_k) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (t, &x) in input.iter().enumerate() {
            let angle = sign * 2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
            acc += x * Complex64::cis(angle);
        }
        *out_k = if inverse { acc / n as f64 } else { acc };
    }
    out
}

fn transform_in_place(data: &mut [Complex64], direction: Direction) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        radix2_in_place(data, direction);
    } else {
        let out = bluestein(data, direction);
        data.copy_from_slice(&out);
    }
    if direction == Direction::Inverse {
        let scale = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z *= scale;
        }
    }
}

/// Iterative radix-2 Cooley–Tukey FFT (unnormalized).
fn radix2_in_place(data: &mut [Complex64], direction: Direction) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }

    let sign = direction.sign();
    let mut len = 2;
    while len <= n {
        let angle_step = sign * 2.0 * std::f64::consts::PI / len as f64;
        let w_len = Complex64::cis(angle_step);
        for start in (0..n).step_by(len) {
            let mut w = Complex64::ONE;
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2] * w;
                data[start + k] = a + b;
                data[start + k + len / 2] = a - b;
                w *= w_len;
            }
        }
        len <<= 1;
    }
}

/// Bluestein chirp-z transform: expresses an arbitrary-length DFT as a
/// convolution, evaluated with power-of-two FFTs.
fn bluestein(input: &[Complex64], direction: Direction) -> Vec<Complex64> {
    let n = input.len();
    let sign = direction.sign();
    let m = (2 * n - 1).next_power_of_two();

    // Chirp: w_k = e^{sign·iπ k² / n}.
    let chirp: Vec<Complex64> = (0..n)
        .map(|k| {
            let k2 = (k as u128 * k as u128) % (2 * n as u128);
            Complex64::cis(sign * std::f64::consts::PI * k2 as f64 / n as f64)
        })
        .collect();

    let mut a = vec![Complex64::ZERO; m];
    for k in 0..n {
        a[k] = input[k] * chirp[k];
    }
    let mut b = vec![Complex64::ZERO; m];
    b[0] = chirp[0].conj();
    for k in 1..n {
        let val = chirp[k].conj();
        b[k] = val;
        b[m - k] = val;
    }

    radix2_in_place(&mut a, Direction::Forward);
    radix2_in_place(&mut b, Direction::Forward);
    for k in 0..m {
        a[k] *= b[k];
    }
    radix2_in_place(&mut a, Direction::Inverse);
    let scale = 1.0 / m as f64;

    (0..n).map(|k| a[k] * chirp[k] * scale).collect()
}

/// Forward 2-D FFT over a complex matrix (rows, then columns).
pub fn fft2(input: &ComplexMatrix) -> ComplexMatrix {
    transform2(input, Direction::Forward)
}

/// Inverse 2-D FFT over a complex matrix (normalized by `1/(rows·cols)`).
pub fn ifft2(input: &ComplexMatrix) -> ComplexMatrix {
    transform2(input, Direction::Inverse)
}

/// Forward 2-D FFT of a real matrix (convenience wrapper that lifts the input
/// to complex first).
pub fn fft2_real(input: &RealMatrix) -> ComplexMatrix {
    fft2(&input.to_complex())
}

fn transform2(input: &ComplexMatrix, direction: Direction) -> ComplexMatrix {
    let (rows, cols) = input.shape();
    let mut out = input.clone();

    // Transform each row.
    let mut row_buf = vec![Complex64::ZERO; cols];
    for i in 0..rows {
        row_buf.copy_from_slice(out.row(i));
        transform_in_place(&mut row_buf, direction);
        out.row_mut(i).copy_from_slice(&row_buf);
    }

    // Transform each column.
    let mut col_buf = vec![Complex64::ZERO; rows];
    for j in 0..cols {
        for i in 0..rows {
            col_buf[i] = out[(i, j)];
        }
        transform_in_place(&mut col_buf, direction);
        for i in 0..rows {
            out[(i, j)] = col_buf[i];
        }
    }
    out
}

/// Moves the zero-frequency bin to the center of the matrix.
///
/// For axis length `n`, bin `k` moves to `(k + n/2) mod n`, matching NumPy's
/// `fftshift`.
pub fn fftshift(input: &ComplexMatrix) -> ComplexMatrix {
    shift(input, true)
}

/// Inverse of [`fftshift`] (identical for even sizes, differs for odd sizes).
pub fn ifftshift(input: &ComplexMatrix) -> ComplexMatrix {
    shift(input, false)
}

fn shift(input: &ComplexMatrix, forward: bool) -> ComplexMatrix {
    let (rows, cols) = input.shape();
    let (dr, dc) = if forward {
        (rows / 2, cols / 2)
    } else {
        (rows - rows / 2, cols - cols / 2)
    };
    Matrix::from_fn(rows, cols, |i, j| {
        input[((i + rows - dr) % rows, (j + cols - dc) % cols)]
    })
}

/// Computes the centered mask spectrum `fftshift(fft2(mask))` used throughout
/// the paper (Algorithm 1, line 6).
pub fn centered_spectrum(mask: &RealMatrix) -> ComplexMatrix {
    fftshift(&fft2_real(mask))
}

/// Inverse of [`centered_spectrum`]: reconstructs the spatial-domain field
/// from a centered spectrum.
pub fn inverse_centered_spectrum(spectrum: &ComplexMatrix) -> ComplexMatrix {
    ifft2(&ifftshift(spectrum))
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_math::DeterministicRng;
    use proptest::prelude::*;

    fn random_signal(n: usize, seed: u64) -> Vec<Complex64> {
        let mut rng = DeterministicRng::new(seed);
        (0..n).map(|_| rng.normal_complex(0.0, 1.0)).collect()
    }

    fn max_abs_diff(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter()
            .zip(b.iter())
            .map(|(&x, &y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn fft_matches_reference_dft_power_of_two() {
        for &n in &[1usize, 2, 4, 8, 16, 64] {
            let x = random_signal(n, n as u64);
            let fast = fft(&x);
            let slow = dft_reference(&x, false);
            assert!(max_abs_diff(&fast, &slow) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn fft_matches_reference_dft_arbitrary_sizes() {
        for &n in &[3usize, 5, 6, 7, 12, 15, 21, 33, 100] {
            let x = random_signal(n, 100 + n as u64);
            let fast = fft(&x);
            let slow = dft_reference(&x, false);
            assert!(max_abs_diff(&fast, &slow) < 1e-8, "n={n}");
        }
    }

    #[test]
    fn ifft_matches_reference() {
        for &n in &[4usize, 9, 16, 25] {
            let x = random_signal(n, 7 * n as u64);
            let fast = ifft(&x);
            let slow = dft_reference(&x, true);
            assert!(max_abs_diff(&fast, &slow) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn round_trip_identity() {
        for &n in &[2usize, 8, 12, 17, 31, 128] {
            let x = random_signal(n, 3 * n as u64);
            let back = ifft(&fft(&x));
            assert!(max_abs_diff(&x, &back) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex64::ZERO; 16];
        x[0] = Complex64::ONE;
        let spectrum = fft(&x);
        for z in spectrum {
            assert!((z - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_signal_concentrates_at_dc() {
        let x = vec![Complex64::ONE; 8];
        let spectrum = fft(&x);
        assert!((spectrum[0] - Complex64::from_real(8.0)).abs() < 1e-12);
        for z in &spectrum[1..] {
            assert!(z.abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_theorem_holds() {
        let x = random_signal(64, 99);
        let spectrum = fft(&x);
        let time_energy: f64 = x.iter().map(|z| z.abs_sq()).sum();
        let freq_energy: f64 = spectrum.iter().map(|z| z.abs_sq()).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() < 1e-8 * (1.0 + time_energy));
    }

    #[test]
    fn linearity_of_fft() {
        let x = random_signal(20, 1);
        let y = random_signal(20, 2);
        let alpha = Complex64::new(0.3, -1.2);
        let combined: Vec<Complex64> = x
            .iter()
            .zip(y.iter())
            .map(|(&a, &b)| a * alpha + b)
            .collect();
        let lhs = fft(&combined);
        let fx = fft(&x);
        let fy = fft(&y);
        let rhs: Vec<Complex64> = fx
            .iter()
            .zip(fy.iter())
            .map(|(&a, &b)| a * alpha + b)
            .collect();
        assert!(max_abs_diff(&lhs, &rhs) < 1e-9);
    }

    #[test]
    fn fft2_matches_row_column_reference() {
        let mut rng = DeterministicRng::new(17);
        let m = ComplexMatrix::from_fn(6, 10, |_, _| rng.normal_complex(0.0, 1.0));
        let fast = fft2(&m);
        // Reference: 2-D DFT definition.
        let (rows, cols) = m.shape();
        for k in 0..rows {
            for l in 0..cols {
                let mut acc = Complex64::ZERO;
                for i in 0..rows {
                    for j in 0..cols {
                        let phase = -2.0
                            * std::f64::consts::PI
                            * ((k * i) as f64 / rows as f64 + (l * j) as f64 / cols as f64);
                        acc += m[(i, j)] * Complex64::cis(phase);
                    }
                }
                assert!((fast[(k, l)] - acc).abs() < 1e-8, "k={k} l={l}");
            }
        }
    }

    #[test]
    fn fft2_round_trip() {
        let mut rng = DeterministicRng::new(23);
        let m = ComplexMatrix::from_fn(12, 7, |_, _| rng.normal_complex(0.0, 1.0));
        let back = ifft2(&fft2(&m));
        for i in 0..12 {
            for j in 0..7 {
                assert!((back[(i, j)] - m[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn fftshift_moves_dc_to_center() {
        let m = RealMatrix::from_fn(8, 8, |i, j| if i == 0 && j == 0 { 1.0 } else { 0.0 });
        let shifted = fftshift(&m.to_complex());
        assert_eq!(shifted[(4, 4)], Complex64::ONE);
        assert_eq!(shifted[(0, 0)], Complex64::ZERO);
    }

    #[test]
    fn fftshift_ifftshift_roundtrip_even_and_odd() {
        for &(r, c) in &[(8usize, 8usize), (7, 9), (6, 5)] {
            let mut rng = DeterministicRng::new((r * 100 + c) as u64);
            let m = ComplexMatrix::from_fn(r, c, |_, _| rng.normal_complex(0.0, 1.0));
            let round = ifftshift(&fftshift(&m));
            for i in 0..r {
                for j in 0..c {
                    assert!(
                        (round[(i, j)] - m[(i, j)]).abs() < 1e-12,
                        "({i},{j}) in {r}x{c}"
                    );
                }
            }
        }
    }

    #[test]
    fn centered_spectrum_of_constant_mask() {
        let mask = RealMatrix::filled(16, 16, 1.0);
        let spec = centered_spectrum(&mask);
        // All energy at the (shifted) DC bin.
        assert!((spec[(8, 8)].re - 256.0).abs() < 1e-9);
        let off_dc: f64 = spec
            .iter()
            .enumerate()
            .filter(|(idx, _)| *idx != 8 * 16 + 8)
            .map(|(_, z)| z.abs())
            .sum();
        assert!(off_dc < 1e-8);
        // Round trip back to the mask.
        let back = inverse_centered_spectrum(&spec);
        for z in back.iter() {
            assert!((z.re - 1.0).abs() < 1e-9 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn real_input_spectrum_is_conjugate_symmetric() {
        let mut rng = DeterministicRng::new(31);
        let mask = RealMatrix::from_fn(8, 8, |_, _| rng.uniform(0.0, 1.0));
        let spec = fft2_real(&mask);
        for i in 0..8 {
            for j in 0..8 {
                let sym = spec[((8 - i) % 8, (8 - j) % 8)].conj();
                assert!((spec[(i, j)] - sym).abs() < 1e-9);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_fft_round_trip(n in 1usize..40, seed in 0u64..1000) {
            let x = random_signal(n, seed);
            let back = ifft(&fft(&x));
            prop_assert!(max_abs_diff(&x, &back) < 1e-8);
        }

        #[test]
        fn prop_parseval(n in 1usize..40, seed in 0u64..1000) {
            let x = random_signal(n, seed);
            let spectrum = fft(&x);
            let te: f64 = x.iter().map(|z| z.abs_sq()).sum();
            let fe: f64 = spectrum.iter().map(|z| z.abs_sq()).sum::<f64>() / n as f64;
            prop_assert!((te - fe).abs() < 1e-7 * (1.0 + te));
        }

        #[test]
        fn prop_fft2_round_trip(rows in 1usize..12, cols in 1usize..12, seed in 0u64..100) {
            let mut rng = DeterministicRng::new(seed);
            let m = ComplexMatrix::from_fn(rows, cols, |_, _| rng.normal_complex(0.0, 1.0));
            let back = ifft2(&fft2(&m));
            for i in 0..rows {
                for j in 0..cols {
                    prop_assert!((back[(i, j)] - m[(i, j)]).abs() < 1e-8);
                }
            }
        }
    }
}
