//! Fast Fourier transforms for the Nitho lithography stack.
//!
//! The Hopkins imaging model and the Nitho training loop live almost entirely
//! in the spatial-frequency domain, so this crate provides the transforms the
//! rest of the workspace needs without external dependencies:
//!
//! * [`fft`] / [`ifft`] — 1-D complex transforms. Power-of-two lengths use an
//!   iterative radix-2 Cooley–Tukey kernel; every other length goes through
//!   Bluestein's chirp-z algorithm, so *any* size works.
//! * [`fft2`] / [`ifft2`] — separable row–column 2-D transforms over
//!   [`ComplexMatrix`].
//! * [`fftshift`] / [`ifftshift`] — move the DC bin to / from the matrix
//!   center, matching the `fftshift(fft2(M))` convention of the paper's
//!   Algorithm 1.
//!
//! # Execution engine
//!
//! All entry points are *planned*: twiddle factors, bit-reversal tables and
//! (for non-power-of-two lengths) the Bluestein chirp plus the precomputed
//! spectrum of its convolution kernel are built once per length and served
//! from a process-wide cache ([`plan_for`] / [`bluestein_plan_for`]). The
//! independent row and column passes of the 2-D transforms are distributed
//! over `litho_parallel` workers for large matrices; because every 1-D
//! transform is computed by exactly one worker and rows are written to
//! disjoint slices, results are **bit-identical for any thread count**.
//!
//! The original per-call-twiddle serial implementation is retained in
//! [`unplanned`] as the equivalence baseline for tests and benchmarks.
//!
//! Conventions: the forward transform is un-normalized
//! (`X_k = Σ x_n e^{-2πi nk/N}`), the inverse divides by `N`, so
//! `ifft(fft(x)) == x`.
//!
//! # Example
//!
//! ```
//! use litho_fft::{fft, ifft};
//! use litho_math::Complex64;
//!
//! let signal: Vec<Complex64> = (0..8).map(|i| Complex64::new(i as f64, 0.0)).collect();
//! let spectrum = fft(&signal);
//! let back = ifft(&spectrum);
//! for (a, b) in signal.iter().zip(back.iter()) {
//!     assert!((*a - *b).abs() < 1e-9);
//! }
//! ```

#![forbid(unsafe_code)]

use std::sync::Arc;

use litho_math::{Complex64, ComplexMatrix, RealMatrix};

pub mod cache;
mod plan;
pub mod soa;
pub use cache::{bluestein_plan_for, plan_for, BluesteinPlan};
pub use plan::FftPlan;

/// 2-D transforms whose matrices have at least this many elements spread the
/// row/column passes over `litho_parallel` workers; smaller transforms are not
/// worth the scoped-thread spawn cost.
const PARALLEL_MIN_ELEMENTS: usize = 4096;

/// Direction of a transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Forward,
    Inverse,
}

impl Direction {
    fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }
}

/// Forward 1-D FFT of a complex slice. Works for any length.
pub fn fft(input: &[Complex64]) -> Vec<Complex64> {
    let mut data = input.to_vec();
    transform_in_place(&mut data, Direction::Forward);
    data
}

/// Inverse 1-D FFT (normalized by `1/N`). Works for any length.
pub fn ifft(input: &[Complex64]) -> Vec<Complex64> {
    let mut data = input.to_vec();
    transform_in_place(&mut data, Direction::Inverse);
    data
}

/// Naive O(N²) reference DFT; used by tests and as the base case for very
/// short lengths.
pub fn dft_reference(input: &[Complex64], inverse: bool) -> Vec<Complex64> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut out = vec![Complex64::ZERO; n];
    for (k, out_k) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (t, &x) in input.iter().enumerate() {
            let angle = sign * 2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
            acc += x * Complex64::cis(angle);
        }
        *out_k = if inverse { acc / n as f64 } else { acc };
    }
    out
}

/// A resolved 1-D transform strategy for one length: identity for trivial
/// lengths, a cached radix-2 plan for powers of two, a cached Bluestein plan
/// otherwise. Cheap to look up, `Sync`, and shared across worker threads.
enum Planned {
    Identity,
    Radix2(Arc<FftPlan>),
    Bluestein(Arc<BluesteinPlan>),
}

impl Planned {
    fn for_len(n: usize) -> Self {
        if n <= 1 {
            Planned::Identity
        } else if n.is_power_of_two() {
            Planned::Radix2(plan_for(n))
        } else {
            Planned::Bluestein(bluestein_plan_for(n))
        }
    }

    fn apply(&self, data: &mut [Complex64], direction: Direction) {
        match (self, direction) {
            (Planned::Identity, _) => {}
            (Planned::Radix2(plan), Direction::Forward) => plan.forward_in_place(data),
            (Planned::Radix2(plan), Direction::Inverse) => plan.inverse_in_place(data),
            (Planned::Bluestein(plan), Direction::Forward) => plan.forward_in_place(data),
            (Planned::Bluestein(plan), Direction::Inverse) => plan.inverse_in_place(data),
        }
    }
}

fn transform_in_place(data: &mut [Complex64], direction: Direction) {
    Planned::for_len(data.len()).apply(data, direction);
}

/// Forward 2-D FFT over a complex matrix (rows, then columns).
pub fn fft2(input: &ComplexMatrix) -> ComplexMatrix {
    transform2(input, Direction::Forward)
}

/// Inverse 2-D FFT over a complex matrix (normalized by `1/(rows·cols)`).
pub fn ifft2(input: &ComplexMatrix) -> ComplexMatrix {
    transform2(input, Direction::Inverse)
}

/// Forward 2-D FFT of a real matrix (convenience wrapper that lifts the input
/// to complex first).
pub fn fft2_real(input: &RealMatrix) -> ComplexMatrix {
    fft2(&input.to_complex())
}

/// `true` when every element is exactly zero. The DFT of an exactly zero
/// vector is exactly zero in both directions, so such rows/columns can skip
/// the transform entirely — the dominant saving for the center-padded spectra
/// of the SOCS synthesis, where all but a few kernel-grid rows are zero.
/// The check depends only on the data, never on the thread count, so pruning
/// preserves the bit-identity contract.
fn is_all_zero(data: &[Complex64]) -> bool {
    data.iter().all(|z| z.re == 0.0 && z.im == 0.0)
}

/// Transforms every length-`row_len` row of `data` in place, spreading rows
/// over workers when the matrix is large enough to amortize the spawn cost.
fn row_pass(data: &mut [Complex64], row_len: usize, plan: &Planned, direction: Direction) {
    let rows = data.len() / row_len;
    let apply = |row: &mut [Complex64]| {
        if !is_all_zero(row) {
            plan.apply(row, direction);
        }
    };
    if rows >= 2 && data.len() >= PARALLEL_MIN_ELEMENTS && litho_parallel::max_threads() > 1 {
        litho_parallel::par_chunks_mut(data, row_len, |_, row| apply(row));
    } else {
        for row in data.chunks_mut(row_len) {
            apply(row);
        }
    }
}

fn transform2(input: &ComplexMatrix, direction: Direction) -> ComplexMatrix {
    let (rows, cols) = input.shape();
    let mut out = input.clone();

    // Row pass.
    let row_plan = Planned::for_len(cols);
    row_pass(out.as_mut_slice(), cols, &row_plan, direction);

    // Column pass. Both strategies below feed every column through the same
    // planned 1-D kernel, so they produce identical bits; they only differ in
    // how the data is moved.
    let col_plan = if rows == cols {
        row_plan
    } else {
        Planned::for_len(rows)
    };
    let parallel = rows >= 2
        && cols >= 2
        && rows * cols >= PARALLEL_MIN_ELEMENTS
        && litho_parallel::max_threads() > 1;
    if parallel {
        // Transpose so columns become contiguous rows that distribute over
        // workers, then transpose back.
        let mut transposed = out.transpose();
        row_pass(transposed.as_mut_slice(), rows, &col_plan, direction);
        transposed.transpose()
    } else {
        // Serial gather/scatter with one reused column buffer — cheaper than
        // two transposes when there is nothing to fan out.
        let mut col_buf = vec![Complex64::ZERO; rows];
        for j in 0..cols {
            for i in 0..rows {
                col_buf[i] = out[(i, j)];
            }
            if is_all_zero(&col_buf) {
                continue;
            }
            col_plan.apply(&mut col_buf, direction);
            for i in 0..rows {
                out[(i, j)] = col_buf[i];
            }
        }
        out
    }
}

/// The original serial, per-call-twiddle transforms.
///
/// These are the pre-planning implementations, kept as the independent
/// baseline that the planned engine is tested against
/// (`planned_matches_unplanned_*`) and benchmarked against
/// (`cargo bench -p litho_bench --bench fft`, `--bench socs`). They share no
/// code with the planned path except the bit-reversal hardening.
pub mod unplanned {
    use super::{Complex64, ComplexMatrix, Direction, RealMatrix};
    use crate::plan::bit_reverse_table;

    /// Forward 1-D FFT (unplanned baseline). Works for any length.
    pub fn fft(input: &[Complex64]) -> Vec<Complex64> {
        let mut data = input.to_vec();
        transform_in_place(&mut data, Direction::Forward);
        data
    }

    /// Inverse 1-D FFT (unplanned baseline, normalized by `1/N`).
    pub fn ifft(input: &[Complex64]) -> Vec<Complex64> {
        let mut data = input.to_vec();
        transform_in_place(&mut data, Direction::Inverse);
        data
    }

    /// Forward 2-D FFT (unplanned baseline).
    pub fn fft2(input: &ComplexMatrix) -> ComplexMatrix {
        transform2(input, Direction::Forward)
    }

    /// Inverse 2-D FFT (unplanned baseline, normalized by `1/(rows·cols)`).
    pub fn ifft2(input: &ComplexMatrix) -> ComplexMatrix {
        transform2(input, Direction::Inverse)
    }

    /// Forward 2-D FFT of a real matrix (unplanned baseline).
    pub fn fft2_real(input: &RealMatrix) -> ComplexMatrix {
        fft2(&input.to_complex())
    }

    pub(crate) fn transform_in_place(data: &mut [Complex64], direction: Direction) {
        let n = data.len();
        if n <= 1 {
            return;
        }
        if n.is_power_of_two() {
            radix2_in_place(data, direction);
        } else {
            let out = bluestein(data, direction);
            data.copy_from_slice(&out);
        }
        if direction == Direction::Inverse {
            let scale = 1.0 / n as f64;
            for z in data.iter_mut() {
                *z *= scale;
            }
        }
    }

    /// Iterative radix-2 Cooley–Tukey FFT (unnormalized), recomputing the
    /// twiddle factors on every call.
    pub(crate) fn radix2_in_place(data: &mut [Complex64], direction: Direction) {
        let n = data.len();
        debug_assert!(n.is_power_of_two());

        // Bit-reversal permutation (hardened against n == 1, where the shift
        // by `usize::BITS - 0` would overflow; see `bit_reverse_table`).
        for (i, j) in bit_reverse_table(n).into_iter().enumerate() {
            if j > i {
                data.swap(i, j);
            }
        }

        let sign = direction.sign();
        let mut len = 2;
        while len <= n {
            let angle_step = sign * 2.0 * std::f64::consts::PI / len as f64;
            let w_len = Complex64::cis(angle_step);
            for start in (0..n).step_by(len) {
                let mut w = Complex64::ONE;
                for k in 0..len / 2 {
                    let a = data[start + k];
                    let b = data[start + k + len / 2] * w;
                    data[start + k] = a + b;
                    data[start + k + len / 2] = a - b;
                    w *= w_len;
                }
            }
            len <<= 1;
        }
    }

    /// Bluestein chirp-z transform: expresses an arbitrary-length DFT as a
    /// convolution, evaluated with power-of-two FFTs. Chirp and kernel
    /// spectrum are recomputed on every call.
    fn bluestein(input: &[Complex64], direction: Direction) -> Vec<Complex64> {
        let n = input.len();
        let sign = direction.sign();
        let m = (2 * n - 1).next_power_of_two();

        // Chirp: w_k = e^{sign·iπ k² / n}.
        let chirp: Vec<Complex64> = (0..n)
            .map(|k| {
                let k2 = (k as u128 * k as u128) % (2 * n as u128);
                Complex64::cis(sign * std::f64::consts::PI * k2 as f64 / n as f64)
            })
            .collect();

        let mut a = vec![Complex64::ZERO; m];
        for k in 0..n {
            a[k] = input[k] * chirp[k];
        }
        let mut b = vec![Complex64::ZERO; m];
        b[0] = chirp[0].conj();
        for k in 1..n {
            let val = chirp[k].conj();
            b[k] = val;
            b[m - k] = val;
        }

        radix2_in_place(&mut a, Direction::Forward);
        radix2_in_place(&mut b, Direction::Forward);
        for k in 0..m {
            a[k] *= b[k];
        }
        radix2_in_place(&mut a, Direction::Inverse);
        let scale = 1.0 / m as f64;

        (0..n).map(|k| a[k] * chirp[k] * scale).collect()
    }

    fn transform2(input: &ComplexMatrix, direction: Direction) -> ComplexMatrix {
        let (rows, cols) = input.shape();
        let mut out = input.clone();

        // Transform each row.
        let mut row_buf = vec![Complex64::ZERO; cols];
        for i in 0..rows {
            row_buf.copy_from_slice(out.row(i));
            transform_in_place(&mut row_buf, direction);
            out.row_mut(i).copy_from_slice(&row_buf);
        }

        // Transform each column.
        let mut col_buf = vec![Complex64::ZERO; rows];
        for j in 0..cols {
            for i in 0..rows {
                col_buf[i] = out[(i, j)];
            }
            transform_in_place(&mut col_buf, direction);
            for i in 0..rows {
                out[(i, j)] = col_buf[i];
            }
        }
        out
    }
}

/// Moves the zero-frequency bin to the center of the matrix.
///
/// For axis length `n`, bin `k` moves to `(k + n/2) mod n`, matching NumPy's
/// `fftshift`.
pub fn fftshift(input: &ComplexMatrix) -> ComplexMatrix {
    let mut out = ComplexMatrix::zeros(input.rows(), input.cols());
    fftshift_into(input, &mut out);
    out
}

/// Inverse of [`fftshift`] (identical for even sizes, differs for odd sizes).
pub fn ifftshift(input: &ComplexMatrix) -> ComplexMatrix {
    let mut out = ComplexMatrix::zeros(input.rows(), input.cols());
    ifftshift_into(input, &mut out);
    out
}

/// [`fftshift`] into a caller-provided matrix: no allocation, and the cyclic
/// rotation is performed with two contiguous segment copies per row instead
/// of per-element modulo indexing.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn fftshift_into(input: &ComplexMatrix, out: &mut ComplexMatrix) {
    shift_into(input, out, true);
}

/// [`ifftshift`] into a caller-provided matrix (see [`fftshift_into`]).
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn ifftshift_into(input: &ComplexMatrix, out: &mut ComplexMatrix) {
    shift_into(input, out, false);
}

fn shift_into(input: &ComplexMatrix, out: &mut ComplexMatrix, forward: bool) {
    let (rows, cols) = input.shape();
    assert_eq!(out.shape(), (rows, cols), "shift output shape mismatch");
    let (dr, dc) = if forward {
        (rows / 2, cols / 2)
    } else {
        (rows - rows / 2, cols - cols / 2)
    };
    // out[i][j] = input[(i + rows − dr) % rows][(j + cols − dc) % cols]:
    // a pure 2-D cyclic rotation. Per output row, the source row is fixed and
    // the column rotation splits into two contiguous block copies.
    let col_split = (cols - dc) % cols;
    for i in 0..rows {
        let src = input.row((i + rows - dr) % rows);
        let dst = out.row_mut(i);
        dst[..cols - col_split].copy_from_slice(&src[col_split..]);
        dst[cols - col_split..].copy_from_slice(&src[..col_split]);
    }
}

/// Computes the centered mask spectrum `fftshift(fft2(mask))` used throughout
/// the paper (Algorithm 1, line 6).
pub fn centered_spectrum(mask: &RealMatrix) -> ComplexMatrix {
    fftshift(&fft2_real(mask))
}

/// Inverse of [`centered_spectrum`]: reconstructs the spatial-domain field
/// from a centered spectrum.
pub fn inverse_centered_spectrum(spectrum: &ComplexMatrix) -> ComplexMatrix {
    ifft2(&ifftshift(spectrum))
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_math::DeterministicRng;
    use proptest::prelude::*;

    fn random_signal(n: usize, seed: u64) -> Vec<Complex64> {
        let mut rng = DeterministicRng::new(seed);
        (0..n).map(|_| rng.normal_complex(0.0, 1.0)).collect()
    }

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> ComplexMatrix {
        let mut rng = DeterministicRng::new(seed);
        ComplexMatrix::from_fn(rows, cols, |_, _| rng.normal_complex(0.0, 1.0))
    }

    fn max_abs_diff(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter()
            .zip(b.iter())
            .map(|(&x, &y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn fft_matches_reference_dft_power_of_two() {
        for &n in &[1usize, 2, 4, 8, 16, 64] {
            let x = random_signal(n, n as u64);
            let fast = fft(&x);
            let slow = dft_reference(&x, false);
            assert!(max_abs_diff(&fast, &slow) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn fft_matches_reference_dft_arbitrary_sizes() {
        for &n in &[3usize, 5, 6, 7, 12, 15, 21, 33, 100] {
            let x = random_signal(n, 100 + n as u64);
            let fast = fft(&x);
            let slow = dft_reference(&x, false);
            assert!(max_abs_diff(&fast, &slow) < 1e-8, "n={n}");
        }
    }

    #[test]
    fn ifft_matches_reference() {
        for &n in &[4usize, 9, 16, 25] {
            let x = random_signal(n, 7 * n as u64);
            let fast = ifft(&x);
            let slow = dft_reference(&x, true);
            assert!(max_abs_diff(&fast, &slow) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn round_trip_identity() {
        // Even, odd, prime and length-1 sizes all round-trip through the
        // planned radix-2 / Bluestein paths.
        for &n in &[1usize, 2, 7, 8, 12, 13, 17, 31, 128] {
            let x = random_signal(n, 3 * n as u64);
            let back = ifft(&fft(&x));
            assert!(max_abs_diff(&x, &back) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn length_one_transforms_are_identity() {
        // Regression companion to `FftPlan::new(1)`: both 1-D entry points and
        // the unplanned baseline must accept length-1 buffers.
        let x = vec![Complex64::new(3.25, -0.5)];
        assert_eq!(fft(&x), x);
        assert_eq!(ifft(&x), x);
        assert_eq!(unplanned::fft(&x), x);
        assert_eq!(unplanned::ifft(&x), x);
    }

    #[test]
    fn unplanned_radix2_accepts_length_one() {
        // The bit-reversal hardening must also protect a direct call into the
        // radix-2 kernel, which is otherwise shielded only by the `n <= 1`
        // early return in `transform_in_place`.
        let original = Complex64::new(1.25, 2.5);
        let mut data = vec![original];
        unplanned::radix2_in_place(&mut data, Direction::Forward);
        assert_eq!(data[0], original);
        unplanned::radix2_in_place(&mut data, Direction::Inverse);
        assert_eq!(data[0], original);
    }

    #[test]
    fn planned_matches_unplanned_1d() {
        for &n in &[1usize, 2, 3, 4, 5, 7, 8, 12, 16, 29, 31, 64, 100] {
            let x = random_signal(n, 500 + n as u64);
            assert!(
                max_abs_diff(&fft(&x), &unplanned::fft(&x)) < 1e-9,
                "forward n={n}"
            );
            assert!(
                max_abs_diff(&ifft(&x), &unplanned::ifft(&x)) < 1e-9,
                "inverse n={n}"
            );
        }
    }

    #[test]
    fn planned_matches_unplanned_2d() {
        for &(r, c) in &[
            (1usize, 1usize),
            (4, 4),
            (6, 10),
            (7, 5),
            (13, 13),
            (32, 12),
        ] {
            let m = random_matrix(r, c, (r * 1000 + c) as u64);
            let planned = fft2(&m);
            let baseline = unplanned::fft2(&m);
            let inv_planned = ifft2(&m);
            let inv_baseline = unplanned::ifft2(&m);
            for i in 0..r {
                for j in 0..c {
                    assert!(
                        (planned[(i, j)] - baseline[(i, j)]).abs() < 1e-9,
                        "forward ({r}x{c}) at ({i},{j})"
                    );
                    assert!(
                        (inv_planned[(i, j)] - inv_baseline[(i, j)]).abs() < 1e-9,
                        "inverse ({r}x{c}) at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn fft2_bit_identical_across_thread_counts() {
        // 64×64 crosses the parallel threshold; the parallel row/column
        // passes must produce the same bits as the single-threaded path.
        let m = random_matrix(64, 64, 77);
        let serial = litho_parallel::with_threads(1, || fft2(&m));
        for threads in [2usize, 4] {
            let parallel = litho_parallel::with_threads(threads, || fft2(&m));
            for (a, b) in serial.iter().zip(parallel.iter()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "threads={threads}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex64::ZERO; 16];
        x[0] = Complex64::ONE;
        let spectrum = fft(&x);
        for z in spectrum {
            assert!((z - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_signal_concentrates_at_dc() {
        let x = vec![Complex64::ONE; 8];
        let spectrum = fft(&x);
        assert!((spectrum[0] - Complex64::from_real(8.0)).abs() < 1e-12);
        for z in &spectrum[1..] {
            assert!(z.abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_theorem_holds() {
        let x = random_signal(64, 99);
        let spectrum = fft(&x);
        let time_energy: f64 = x.iter().map(|z| z.abs_sq()).sum();
        let freq_energy: f64 = spectrum.iter().map(|z| z.abs_sq()).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() < 1e-8 * (1.0 + time_energy));
    }

    #[test]
    fn linearity_of_fft() {
        let x = random_signal(20, 1);
        let y = random_signal(20, 2);
        let alpha = Complex64::new(0.3, -1.2);
        let combined: Vec<Complex64> = x
            .iter()
            .zip(y.iter())
            .map(|(&a, &b)| a * alpha + b)
            .collect();
        let lhs = fft(&combined);
        let fx = fft(&x);
        let fy = fft(&y);
        let rhs: Vec<Complex64> = fx
            .iter()
            .zip(fy.iter())
            .map(|(&a, &b)| a * alpha + b)
            .collect();
        assert!(max_abs_diff(&lhs, &rhs) < 1e-9);
    }

    #[test]
    fn fft2_matches_row_column_reference() {
        let m = random_matrix(6, 10, 17);
        let fast = fft2(&m);
        // Reference: 2-D DFT definition.
        let (rows, cols) = m.shape();
        for k in 0..rows {
            for l in 0..cols {
                let mut acc = Complex64::ZERO;
                for i in 0..rows {
                    for j in 0..cols {
                        let phase = -2.0
                            * std::f64::consts::PI
                            * ((k * i) as f64 / rows as f64 + (l * j) as f64 / cols as f64);
                        acc += m[(i, j)] * Complex64::cis(phase);
                    }
                }
                assert!((fast[(k, l)] - acc).abs() < 1e-8, "k={k} l={l}");
            }
        }
    }

    #[test]
    fn fft2_round_trip() {
        let m = random_matrix(12, 7, 23);
        let back = ifft2(&fft2(&m));
        for i in 0..12 {
            for j in 0..7 {
                assert!((back[(i, j)] - m[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn fftshift_moves_dc_to_center() {
        let m = RealMatrix::from_fn(8, 8, |i, j| if i == 0 && j == 0 { 1.0 } else { 0.0 });
        let shifted = fftshift(&m.to_complex());
        assert_eq!(shifted[(4, 4)], Complex64::ONE);
        assert_eq!(shifted[(0, 0)], Complex64::ZERO);
    }

    #[test]
    fn fftshift_ifftshift_roundtrip_even_and_odd() {
        for &(r, c) in &[(8usize, 8usize), (7, 9), (6, 5)] {
            let m = random_matrix(r, c, (r * 100 + c) as u64);
            let round = ifftshift(&fftshift(&m));
            for i in 0..r {
                for j in 0..c {
                    assert!(
                        (round[(i, j)] - m[(i, j)]).abs() < 1e-12,
                        "({i},{j}) in {r}x{c}"
                    );
                }
            }
        }
    }

    #[test]
    fn centered_spectrum_of_constant_mask() {
        let mask = RealMatrix::filled(16, 16, 1.0);
        let spec = centered_spectrum(&mask);
        // All energy at the (shifted) DC bin.
        assert!((spec[(8, 8)].re - 256.0).abs() < 1e-9);
        let off_dc: f64 = spec
            .iter()
            .enumerate()
            .filter(|(idx, _)| *idx != 8 * 16 + 8)
            .map(|(_, z)| z.abs())
            .sum();
        assert!(off_dc < 1e-8);
        // Round trip back to the mask.
        let back = inverse_centered_spectrum(&spec);
        for z in back.iter() {
            assert!((z.re - 1.0).abs() < 1e-9 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn real_input_spectrum_is_conjugate_symmetric() {
        let mut rng = DeterministicRng::new(31);
        let mask = RealMatrix::from_fn(8, 8, |_, _| rng.uniform(0.0, 1.0));
        let spec = fft2_real(&mask);
        for i in 0..8 {
            for j in 0..8 {
                let sym = spec[((8 - i) % 8, (8 - j) % 8)].conj();
                assert!((spec[(i, j)] - sym).abs() < 1e-9);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_fft_round_trip(n in 1usize..40, seed in 0u64..1000) {
            let x = random_signal(n, seed);
            let back = ifft(&fft(&x));
            prop_assert!(max_abs_diff(&x, &back) < 1e-8);
        }

        #[test]
        fn prop_parseval(n in 1usize..40, seed in 0u64..1000) {
            let x = random_signal(n, seed);
            let spectrum = fft(&x);
            let te: f64 = x.iter().map(|z| z.abs_sq()).sum();
            let fe: f64 = spectrum.iter().map(|z| z.abs_sq()).sum::<f64>() / n as f64;
            prop_assert!((te - fe).abs() < 1e-7 * (1.0 + te));
        }

        #[test]
        fn prop_fft2_round_trip(rows in 1usize..12, cols in 1usize..12, seed in 0u64..100) {
            let m = random_matrix(rows, cols, seed);
            let back = ifft2(&fft2(&m));
            for i in 0..rows {
                for j in 0..cols {
                    prop_assert!((back[(i, j)] - m[(i, j)]).abs() < 1e-8);
                }
            }
        }

        #[test]
        fn prop_planned_matches_unplanned(n in 1usize..48, seed in 0u64..1000) {
            let x = random_signal(n, seed);
            prop_assert!(max_abs_diff(&fft(&x), &unplanned::fft(&x)) < 1e-8);
            prop_assert!(max_abs_diff(&ifft(&x), &unplanned::ifft(&x)) < 1e-8);
        }
    }
}
