//! Pre-planned power-of-two FFTs.
//!
//! The SOCS aerial-image synthesis applies the same-size inverse FFT once per
//! optical kernel per mask, so re-computing twiddle factors and the
//! bit-reversal permutation on every call is wasteful. [`FftPlan`] caches both
//! for a fixed power-of-two length and exposes in-place 1-D transforms plus a
//! convenience 2-D entry point for square matrices of that size.

use litho_math::simd::{simd_backend, SimdBackend};
use litho_math::{soa, Complex64, ComplexMatrix};

/// Bit-reversal permutation table for a power-of-two length.
///
/// Hardened against the `len == 1` edge: with zero significant bits the naive
/// `x.reverse_bits() >> (usize::BITS - bits)` shifts by the full word width,
/// which panics in debug builds (attempt to shift right with overflow) and is
/// undefined-ish in release. A 1-point permutation is the identity.
pub(crate) fn bit_reverse_table(len: usize) -> Vec<usize> {
    debug_assert!(len.is_power_of_two());
    let bits = len.trailing_zeros();
    if bits == 0 {
        return vec![0];
    }
    (0..len)
        .map(|i| (i.reverse_bits() >> (usize::BITS - bits)) & (len - 1))
        .collect()
}

/// A reusable FFT plan for a fixed power-of-two length.
///
/// # Example
///
/// ```
/// use litho_fft::{fft, FftPlan};
/// use litho_math::Complex64;
///
/// let plan = FftPlan::new(16);
/// let signal: Vec<Complex64> = (0..16).map(|i| Complex64::new(i as f64, 0.0)).collect();
/// let mut planned = signal.clone();
/// plan.forward_in_place(&mut planned);
/// let direct = fft(&signal);
/// for (a, b) in planned.iter().zip(direct.iter()) {
///     assert!((*a - *b).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    len: usize,
    bit_reverse: Vec<usize>,
    /// Twiddle factors for the forward transform, one table per stage.
    forward_twiddles: Vec<Vec<Complex64>>,
    /// Twiddle factors for the inverse transform.
    inverse_twiddles: Vec<Vec<Complex64>>,
    /// Split-complex Stockham twiddle tables, `(re, im)` per stage: stage `t`
    /// covers sub-transform length `len >> t` and holds `len >> (t+1)`
    /// factors `e^{∓2πi p/(len >> t)}`.
    stockham_forward: Vec<(Vec<f64>, Vec<f64>)>,
    stockham_inverse: Vec<(Vec<f64>, Vec<f64>)>,
    /// The same Stockham tables narrowed to `f32` for the opt-in
    /// reduced-precision path (`NITHO_PRECISION=f32`).
    stockham_forward_f32: Vec<(Vec<f32>, Vec<f32>)>,
    stockham_inverse_f32: Vec<(Vec<f32>, Vec<f32>)>,
}

thread_local! {
    /// Ping-pong partner buffer for the Stockham stages; reused across every
    /// transform this thread runs (grow-only, so the warm path is
    /// allocation-free).
    static SOA_PING_PONG: std::cell::RefCell<(Vec<f64>, Vec<f64>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
    /// f32 twin of [`SOA_PING_PONG`] for the reduced-precision transforms.
    static SOA_PING_PONG_F32: std::cell::RefCell<(Vec<f32>, Vec<f32>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

/// One Stockham decimation-in-frequency stage over `s`-strided interleaved
/// sub-transforms: for each butterfly index `p`, `dst[2p] = a + b` and
/// `dst[2p+1] = (a − b)·w_p`, where `a`/`b` are contiguous `s`-length runs.
///
/// The `s == 1` stage interleaves its writes (no contiguous runs to
/// vectorize over), so it stays scalar on every backend — keeping the first
/// stage bit-identical between backends for free. Stages with `s ≥ 2`
/// route their contiguous-run butterfly through
/// [`soa::stockham_butterfly_with`], which is where the explicit AVX2+FMA
/// kernels (or the pinned scalar reference) run; `backend` is hoisted once
/// per transform by the caller rather than re-resolved per butterfly.
///
/// Stamped for both `f64` and `f32` by the macro below.
macro_rules! stockham_stage_impl {
    ($name:ident, $t:ty, $bfly:path) => {
        #[allow(clippy::too_many_arguments)]
        fn $name(
            backend: SimdBackend,
            src_re: &[$t],
            src_im: &[$t],
            dst_re: &mut [$t],
            dst_im: &mut [$t],
            tw_re: &[$t],
            tw_im: &[$t],
            m: usize,
            s: usize,
        ) {
            if s == 1 {
                // First stage: a = src[p], b = src[p + m] — both reads are
                // contiguous in p, writes interleave as (2p, 2p+1).
                let (a_re, b_re) = src_re.split_at(m);
                let (a_im, b_im) = src_im.split_at(m);
                for p in 0..m {
                    let (ar, ai) = (a_re[p], a_im[p]);
                    let (br, bi) = (b_re[p], b_im[p]);
                    dst_re[2 * p] = ar + br;
                    dst_im[2 * p] = ai + bi;
                    let (dr, di) = (ar - br, ai - bi);
                    dst_re[2 * p + 1] = dr * tw_re[p] - di * tw_im[p];
                    dst_im[2 * p + 1] = dr * tw_im[p] + di * tw_re[p];
                }
                return;
            }
            for p in 0..m {
                let (wr, wi) = (tw_re[p], tw_im[p]);
                let a_re = &src_re[p * s..(p + 1) * s];
                let a_im = &src_im[p * s..(p + 1) * s];
                let b_re = &src_re[(p + m) * s..(p + m + 1) * s];
                let b_im = &src_im[(p + m) * s..(p + m + 1) * s];
                let (d0_re, d1_re) = dst_re[2 * p * s..(2 * p + 2) * s].split_at_mut(s);
                let (d0_im, d1_im) = dst_im[2 * p * s..(2 * p + 2) * s].split_at_mut(s);
                $bfly(
                    backend, a_re, a_im, b_re, b_im, d0_re, d0_im, d1_re, d1_im, wr, wi,
                );
            }
        }
    };
}

stockham_stage_impl!(stockham_stage, f64, soa::stockham_butterfly_with);
stockham_stage_impl!(stockham_stage_f32, f32, soa::stockham_butterfly_f32_with);

/// Stockham stage tables for one direction.
fn stockham_tables(len: usize, sign: f64) -> Vec<(Vec<f64>, Vec<f64>)> {
    let mut tables = Vec::new();
    let mut n_cur = len;
    while n_cur > 1 {
        let m = n_cur / 2;
        let step = sign * 2.0 * std::f64::consts::PI / n_cur as f64;
        let mut re = Vec::with_capacity(m);
        let mut im = Vec::with_capacity(m);
        for p in 0..m {
            let w = Complex64::cis(step * p as f64);
            re.push(w.re);
            im.push(w.im);
        }
        tables.push((re, im));
        n_cur = m;
    }
    tables
}

impl FftPlan {
    /// Creates a plan for transforms of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is not a power of two or is zero.
    pub fn new(len: usize) -> Self {
        assert!(
            len.is_power_of_two() && len > 0,
            "FftPlan requires a power-of-two length"
        );
        let bit_reverse = bit_reverse_table(len);

        let build = |sign: f64| {
            let mut tables = Vec::new();
            let mut stage_len = 2usize;
            while stage_len <= len {
                let step = sign * 2.0 * std::f64::consts::PI / stage_len as f64;
                let table: Vec<Complex64> = (0..stage_len / 2)
                    .map(|k| Complex64::cis(step * k as f64))
                    .collect();
                tables.push(table);
                stage_len <<= 1;
            }
            tables
        };

        let stockham_forward = stockham_tables(len, -1.0);
        let stockham_inverse = stockham_tables(len, 1.0);
        let narrow = |tables: &[(Vec<f64>, Vec<f64>)]| {
            tables
                .iter()
                .map(|(re, im)| {
                    (
                        re.iter().map(|&v| v as f32).collect(),
                        im.iter().map(|&v| v as f32).collect(),
                    )
                })
                .collect()
        };
        let stockham_forward_f32 = narrow(&stockham_forward);
        let stockham_inverse_f32 = narrow(&stockham_inverse);
        Self {
            len,
            bit_reverse,
            forward_twiddles: build(-1.0),
            inverse_twiddles: build(1.0),
            stockham_forward,
            stockham_inverse,
            stockham_forward_f32,
            stockham_inverse_f32,
        }
    }

    /// Transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always `false`; plans have non-zero length by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place forward FFT (unnormalized).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the planned length.
    pub fn forward_in_place(&self, data: &mut [Complex64]) {
        self.run(data, &self.forward_twiddles);
    }

    /// In-place inverse FFT (normalized by `1/N`).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the planned length.
    pub fn inverse_in_place(&self, data: &mut [Complex64]) {
        self.run(data, &self.inverse_twiddles);
        let scale = 1.0 / self.len as f64;
        for z in data.iter_mut() {
            *z *= scale;
        }
    }

    /// In-place forward FFT (unnormalized) over a split-complex `(re, im)`
    /// buffer pair.
    ///
    /// The SoA engine is a Stockham autosort radix-2 kernel: no bit-reversal
    /// pass, every stage reads and writes contiguous runs (ping-ponging with
    /// a thread-local scratch buffer), and the inner loops carry one constant
    /// twiddle — the shape LLVM turns into full-width vector code. It
    /// computes the same radix-2 DFT as [`FftPlan::forward_in_place`]; the
    /// decimation direction differs, so results agree to roundoff (≈ 1e-15
    /// relative, pinned at ≤ 1e-12 by the equivalence suite), not bit for
    /// bit.
    ///
    /// # Panics
    ///
    /// Panics if either slice length does not match the planned length.
    pub fn forward_soa_in_place(&self, re: &mut [f64], im: &mut [f64]) {
        self.forward_soa_with(simd_backend(), re, im);
    }

    /// [`FftPlan::forward_soa_in_place`] with an explicit SIMD backend (the
    /// in-place entry point resolves `NITHO_SIMD` instead).
    pub fn forward_soa_with(&self, backend: SimdBackend, re: &mut [f64], im: &mut [f64]) {
        self.run_soa(backend, re, im, &self.stockham_forward);
    }

    /// In-place inverse FFT (normalized by `1/N`) over a split-complex
    /// `(re, im)` buffer pair (see [`FftPlan::forward_soa_in_place`] for the
    /// engine and its accuracy contract).
    ///
    /// # Panics
    ///
    /// Panics if either slice length does not match the planned length.
    pub fn inverse_soa_in_place(&self, re: &mut [f64], im: &mut [f64]) {
        self.inverse_soa_with(simd_backend(), re, im);
    }

    /// [`FftPlan::inverse_soa_in_place`] with an explicit SIMD backend.
    pub fn inverse_soa_with(&self, backend: SimdBackend, re: &mut [f64], im: &mut [f64]) {
        self.run_soa(backend, re, im, &self.stockham_inverse);
        let scale = 1.0 / self.len as f64;
        soa::scale_in_place_with(backend, re, im, scale);
    }

    /// f32 forward transform for the reduced-precision path (unnormalized).
    ///
    /// # Panics
    ///
    /// Panics if either slice length does not match the planned length.
    pub fn forward_soa_f32_with(&self, backend: SimdBackend, re: &mut [f32], im: &mut [f32]) {
        self.run_soa_f32(backend, re, im, &self.stockham_forward_f32);
    }

    /// f32 inverse transform for the reduced-precision path (normalized by
    /// `1/N`).
    ///
    /// # Panics
    ///
    /// Panics if either slice length does not match the planned length.
    pub fn inverse_soa_f32_with(&self, backend: SimdBackend, re: &mut [f32], im: &mut [f32]) {
        self.run_soa_f32(backend, re, im, &self.stockham_inverse_f32);
        let scale = 1.0 / self.len as f32;
        soa::scale_in_place_f32_with(backend, re, im, scale);
    }

    fn run_soa(
        &self,
        backend: SimdBackend,
        re: &mut [f64],
        im: &mut [f64],
        twiddles: &[(Vec<f64>, Vec<f64>)],
    ) {
        assert_eq!(re.len(), self.len, "buffer length does not match plan");
        assert_eq!(im.len(), self.len, "buffer length does not match plan");
        crate::cache::record_1d_transforms(1);
        if self.len < 2 {
            return;
        }
        SOA_PING_PONG.with(|cell| {
            let mut borrow = cell.borrow_mut();
            let (sc_re, sc_im) = &mut *borrow;
            if sc_re.len() < self.len {
                sc_re.resize(self.len, 0.0);
                sc_im.resize(self.len, 0.0);
            }
            let mut n_cur = self.len;
            let mut stride = 1;
            let mut in_caller = true;
            for (tw_re, tw_im) in twiddles {
                let m = n_cur / 2;
                if in_caller {
                    stockham_stage(backend, re, im, sc_re, sc_im, tw_re, tw_im, m, stride);
                } else {
                    stockham_stage(backend, sc_re, sc_im, re, im, tw_re, tw_im, m, stride);
                }
                n_cur = m;
                stride *= 2;
                in_caller = !in_caller;
            }
            if !in_caller {
                re.copy_from_slice(&sc_re[..self.len]);
                im.copy_from_slice(&sc_im[..self.len]);
            }
        });
    }

    fn run_soa_f32(
        &self,
        backend: SimdBackend,
        re: &mut [f32],
        im: &mut [f32],
        twiddles: &[(Vec<f32>, Vec<f32>)],
    ) {
        assert_eq!(re.len(), self.len, "buffer length does not match plan");
        assert_eq!(im.len(), self.len, "buffer length does not match plan");
        crate::cache::record_1d_transforms(1);
        if self.len < 2 {
            return;
        }
        SOA_PING_PONG_F32.with(|cell| {
            let mut borrow = cell.borrow_mut();
            let (sc_re, sc_im) = &mut *borrow;
            if sc_re.len() < self.len {
                sc_re.resize(self.len, 0.0);
                sc_im.resize(self.len, 0.0);
            }
            let mut n_cur = self.len;
            let mut stride = 1;
            let mut in_caller = true;
            for (tw_re, tw_im) in twiddles {
                let m = n_cur / 2;
                if in_caller {
                    stockham_stage_f32(backend, re, im, sc_re, sc_im, tw_re, tw_im, m, stride);
                } else {
                    stockham_stage_f32(backend, sc_re, sc_im, re, im, tw_re, tw_im, m, stride);
                }
                n_cur = m;
                stride *= 2;
                in_caller = !in_caller;
            }
            if !in_caller {
                re.copy_from_slice(&sc_re[..self.len]);
                im.copy_from_slice(&sc_im[..self.len]);
            }
        });
    }

    fn run(&self, data: &mut [Complex64], twiddles: &[Vec<Complex64>]) {
        assert_eq!(data.len(), self.len, "buffer length does not match plan");
        crate::cache::record_1d_transforms(1);
        for i in 0..self.len {
            let j = self.bit_reverse[i];
            if j > i {
                data.swap(i, j);
            }
        }
        let mut stage = 0;
        let mut len = 2;
        while len <= self.len {
            let table = &twiddles[stage];
            for start in (0..self.len).step_by(len) {
                for k in 0..len / 2 {
                    let a = data[start + k];
                    let b = data[start + k + len / 2] * table[k];
                    data[start + k] = a + b;
                    data[start + k + len / 2] = a - b;
                }
            }
            len <<= 1;
            stage += 1;
        }
    }

    /// 2-D forward FFT of a square `len × len` matrix using this plan for both
    /// axes.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `len × len`.
    pub fn forward2(&self, input: &ComplexMatrix) -> ComplexMatrix {
        self.transform2(input, true)
    }

    /// 2-D inverse FFT of a square `len × len` matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `len × len`.
    pub fn inverse2(&self, input: &ComplexMatrix) -> ComplexMatrix {
        self.transform2(input, false)
    }

    fn transform2(&self, input: &ComplexMatrix, forward: bool) -> ComplexMatrix {
        assert_eq!(
            input.shape(),
            (self.len, self.len),
            "matrix shape does not match plan length"
        );
        let n = self.len;
        let mut out = input.clone();
        let mut buf = vec![Complex64::ZERO; n];
        for i in 0..n {
            buf.copy_from_slice(out.row(i));
            if forward {
                self.forward_in_place(&mut buf);
            } else {
                self.inverse_in_place(&mut buf);
            }
            out.row_mut(i).copy_from_slice(&buf);
        }
        for j in 0..n {
            for i in 0..n {
                buf[i] = out[(i, j)];
            }
            if forward {
                self.forward_in_place(&mut buf);
            } else {
                self.inverse_in_place(&mut buf);
            }
            for i in 0..n {
                out[(i, j)] = buf[i];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fft2, ifft2};
    use litho_math::DeterministicRng;

    #[test]
    fn plan_matches_direct_fft() {
        let plan = FftPlan::new(32);
        let mut rng = DeterministicRng::new(1);
        let x: Vec<Complex64> = (0..32).map(|_| rng.normal_complex(0.0, 1.0)).collect();
        let mut planned = x.clone();
        plan.forward_in_place(&mut planned);
        let direct = crate::fft(&x);
        for (a, b) in planned.iter().zip(direct.iter()) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn plan_round_trip() {
        let plan = FftPlan::new(64);
        let mut rng = DeterministicRng::new(2);
        let x: Vec<Complex64> = (0..64).map(|_| rng.normal_complex(0.0, 1.0)).collect();
        let mut data = x.clone();
        plan.forward_in_place(&mut data);
        plan.inverse_in_place(&mut data);
        for (a, b) in data.iter().zip(x.iter()) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn plan_2d_matches_module_level_fft2() {
        let plan = FftPlan::new(16);
        let mut rng = DeterministicRng::new(3);
        let m = ComplexMatrix::from_fn(16, 16, |_, _| rng.normal_complex(0.0, 1.0));
        let a = plan.forward2(&m);
        let b = fft2(&m);
        for i in 0..16 {
            for j in 0..16 {
                assert!((a[(i, j)] - b[(i, j)]).abs() < 1e-9);
            }
        }
        let inv_a = plan.inverse2(&a);
        let inv_b = ifft2(&b);
        for i in 0..16 {
            for j in 0..16 {
                assert!((inv_a[(i, j)] - inv_b[(i, j)]).abs() < 1e-9);
                assert!((inv_a[(i, j)] - m[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn length_one_plan_is_identity() {
        // Regression: the bit-reversal table used to compute
        // `x >> (usize::BITS - 0)`, panicking in debug builds for len == 1.
        let plan = FftPlan::new(1);
        assert_eq!(plan.len(), 1);
        let original = Complex64::new(2.5, -1.5);
        let mut data = vec![original];
        plan.forward_in_place(&mut data);
        assert_eq!(data[0], original, "1-point forward DFT is the identity");
        plan.inverse_in_place(&mut data);
        assert_eq!(data[0], original, "1-point inverse DFT is the identity");
        let m = ComplexMatrix::filled(1, 1, original);
        assert_eq!(plan.forward2(&m)[(0, 0)], original);
        assert_eq!(plan.inverse2(&m)[(0, 0)], original);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_panics() {
        let _ = FftPlan::new(12);
    }

    #[test]
    #[should_panic(expected = "does not match plan")]
    fn wrong_buffer_length_panics() {
        let plan = FftPlan::new(8);
        let mut data = vec![Complex64::ZERO; 4];
        plan.forward_in_place(&mut data);
    }

    #[test]
    fn accessors() {
        let plan = FftPlan::new(8);
        assert_eq!(plan.len(), 8);
        assert!(!plan.is_empty());
    }
}
