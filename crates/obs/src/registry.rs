//! Atomics-based metrics registry with Prometheus text exposition.
//!
//! Instrumented crates declare metrics as `static` items (`const fn`
//! constructors, so no lazy initialization on the hot path) and register
//! them once through [`register`]. Recording is a relaxed atomic operation;
//! rendering walks the registered list and emits the
//! [Prometheus text exposition format](https://prometheus.io/docs/instrumenting/exposition_formats/)
//! (`# HELP` / `# TYPE` comments, `_bucket{le=…}` / `_sum` / `_count`
//! histogram series).
//!
//! Metrics that share a family name (e.g. per-endpoint latency histograms
//! differing only in their label set) are grouped under one `# TYPE` block
//! regardless of registration order.
//!
//! The `NITHO_METRICS` environment variable (read once; `0`/`false`/`off`/
//! `no` disable) gates every recording call so the benches can A/B the
//! instrumentation overhead; [`set_enabled`] overrides it in-process.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};

/// Upper bound on histogram buckets (including the `+Inf` bucket).
pub const MAX_BUCKETS: usize = 32;

static ENABLED: AtomicBool = AtomicBool::new(true);
static ENABLED_INIT: Once = Once::new();

/// `true` when metric recording is on (the default). Controlled by
/// `NITHO_METRICS` (read once on first use) and [`set_enabled`].
pub fn enabled() -> bool {
    ENABLED_INIT.call_once(|| {
        if let Ok(value) = std::env::var("NITHO_METRICS") {
            let value = value.trim().to_ascii_lowercase();
            if matches!(value.as_str(), "0" | "false" | "off" | "no") {
                ENABLED.store(false, Ordering::Relaxed);
            }
        }
    });
    ENABLED.load(Ordering::Relaxed)
}

/// Force-enables or disables metric recording, overriding `NITHO_METRICS`.
/// Used by the benches to measure instrumentation overhead; already-recorded
/// values are kept either way.
pub fn set_enabled(on: bool) {
    ENABLED_INIT.call_once(|| {});
    ENABLED.store(on, Ordering::Relaxed);
}

/// How a metric's integer payload is rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Unit {
    /// Render the raw `u64`.
    Int,
    /// The counter accumulates nanoseconds; render as fractional seconds.
    NanosAsSeconds,
}

fn write_value(out: &mut String, value: u64, unit: Unit) {
    match unit {
        Unit::Int => {
            let _ = write!(out, "{value}");
        }
        Unit::NanosAsSeconds => {
            let _ = write!(out, "{:.9}", value as f64 / 1e9);
        }
    }
}

/// A registrable metric: a family name, help text, a Prometheus type, and a
/// renderer for its sample lines (everything after the `# TYPE` comment).
pub trait Metric: Sync {
    /// Metric family name (without label set).
    fn name(&self) -> &'static str;
    /// One-line help text.
    fn help(&self) -> &'static str;
    /// Prometheus type: `counter`, `gauge` or `histogram`.
    fn type_name(&self) -> &'static str;
    /// Appends this metric's sample lines to `out`.
    fn render(&self, out: &mut String);
}

static REGISTRY: OnceLock<Mutex<Vec<&'static dyn Metric>>> = OnceLock::new();

fn registry() -> &'static Mutex<Vec<&'static dyn Metric>> {
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers a metric for exposition. Registering the same `static` twice is
/// a no-op (deduplicated by address), so per-crate `register_metrics()` hooks
/// are safely callable from multiple entry points.
pub fn register(metric: &'static dyn Metric) {
    let mut metrics = registry().lock().unwrap_or_else(|p| p.into_inner());
    let new_ptr = metric as *const dyn Metric as *const ();
    if metrics
        .iter()
        .any(|m| std::ptr::eq(*m as *const dyn Metric as *const (), new_ptr))
    {
        return;
    }
    metrics.push(metric);
}

/// Number of registered metrics (label variants counted individually).
pub fn metric_count() -> usize {
    registry().lock().unwrap_or_else(|p| p.into_inner()).len()
}

/// Renders every registered metric in Prometheus text exposition format.
/// Metrics sharing a family name are grouped under one `# HELP`/`# TYPE`
/// block, in first-registration order.
pub fn render_prometheus() -> String {
    let metrics = registry().lock().unwrap_or_else(|p| p.into_inner());
    let mut families: Vec<&'static str> = Vec::new();
    for metric in metrics.iter() {
        if !families.contains(&metric.name()) {
            families.push(metric.name());
        }
    }
    let mut out = String::new();
    for family in families {
        let mut first = true;
        for metric in metrics.iter().filter(|m| m.name() == family) {
            if first {
                let _ = writeln!(out, "# HELP {} {}", family, metric.help());
                let _ = writeln!(out, "# TYPE {} {}", family, metric.type_name());
                first = false;
            }
            metric.render(&mut out);
        }
    }
    out
}

/// A monotone counter (relaxed atomic adds; recording is gated on
/// [`enabled`], reading is not).
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    help: &'static str,
    /// Label set without braces (e.g. `endpoint="/v1/simulate"`), or `""`.
    label: &'static str,
    unit: Unit,
    value: AtomicU64,
}

impl Counter {
    /// An unlabelled integer counter.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self::with_label(name, help, "")
    }

    /// A counter with a fixed label set (`label` is the inside of the
    /// braces, e.g. `endpoint="/v1/simulate"`).
    pub const fn with_label(name: &'static str, help: &'static str, label: &'static str) -> Self {
        Self {
            name,
            help,
            label,
            unit: Unit::Int,
            value: AtomicU64::new(0),
        }
    }

    /// A counter that accumulates nanoseconds and renders fractional
    /// seconds (for `…_seconds_total` families).
    pub const fn seconds_from_nanos(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            label: "",
            unit: Unit::NanosAsSeconds,
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` (no-op while recording is disabled).
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 (no-op while recording is disabled).
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current raw value (nanoseconds for [`Counter::seconds_from_nanos`]).
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Metric for Counter {
    fn name(&self) -> &'static str {
        self.name
    }
    fn help(&self) -> &'static str {
        self.help
    }
    fn type_name(&self) -> &'static str {
        "counter"
    }
    fn render(&self, out: &mut String) {
        out.push_str(self.name);
        if !self.label.is_empty() {
            let _ = write!(out, "{{{}}}", self.label);
        }
        out.push(' ');
        write_value(out, self.get(), self.unit);
        out.push('\n');
    }
}

/// A last-write-wins gauge (relaxed atomic store; recording is gated on
/// [`enabled`], reading is not).
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    help: &'static str,
    label: &'static str,
    value: AtomicU64,
}

impl Gauge {
    /// An unlabelled gauge.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self::with_label(name, help, "")
    }

    /// A gauge with a fixed label set.
    pub const fn with_label(name: &'static str, help: &'static str, label: &'static str) -> Self {
        Self {
            name,
            help,
            label,
            value: AtomicU64::new(0),
        }
    }

    /// Sets the gauge (no-op while recording is disabled).
    pub fn set(&self, value: u64) {
        if enabled() {
            self.value.store(value, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Metric for Gauge {
    fn name(&self) -> &'static str {
        self.name
    }
    fn help(&self) -> &'static str {
        self.help
    }
    fn type_name(&self) -> &'static str {
        "gauge"
    }
    fn render(&self, out: &mut String) {
        out.push_str(self.name);
        if !self.label.is_empty() {
            let _ = write!(out, "{{{}}}", self.label);
        }
        let _ = writeln!(out, " {}", self.get());
    }
}

/// A constant-`1` identity metric whose label set is assigned at runtime —
/// the Prometheus "info metric" idiom (`…_info{key="value"} 1`) for exposing
/// resolved configuration (SIMD backend, precision) as joinable labels
/// rather than numbers. Rendered as a gauge: the classic text format has no
/// dedicated info type.
///
/// The label must be `'static` (the inside of the braces, e.g.
/// `backend="avx2"`); callers pick from fixed strings at startup. Setting the
/// label is *not* gated on [`enabled`] — identity should be visible even
/// when hot-path recording is off.
#[derive(Debug)]
pub struct Info {
    name: &'static str,
    help: &'static str,
    label: Mutex<&'static str>,
}

impl Info {
    /// An info metric with no label assigned yet (renders unlabelled until
    /// [`Info::set_label`] is called).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            label: Mutex::new(""),
        }
    }

    /// Assigns the label set (inside of the braces). Last write wins.
    pub fn set_label(&self, label: &'static str) {
        *self.label.lock().unwrap_or_else(|p| p.into_inner()) = label;
    }

    /// The currently assigned label set (`""` when unset).
    pub fn label(&self) -> &'static str {
        *self.label.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl Metric for Info {
    fn name(&self) -> &'static str {
        self.name
    }
    fn help(&self) -> &'static str {
        self.help
    }
    fn type_name(&self) -> &'static str {
        "gauge"
    }
    fn render(&self, out: &mut String) {
        out.push_str(self.name);
        let label = self.label();
        if !label.is_empty() {
            let _ = write!(out, "{{{label}}}");
        }
        out.push_str(" 1\n");
    }
}

/// A fixed-bucket histogram over ascending `u64` upper bounds; a final
/// `u64::MAX` bound renders as the `+Inf` bucket (one is appended implicitly
/// when absent, Prometheus requires it). Recording is lock-free: one bucket
/// increment plus sum/count adds, all relaxed.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    help: &'static str,
    label: &'static str,
    bounds: &'static [u64],
    counts: [AtomicU64; MAX_BUCKETS],
    sum: AtomicU64,
    total: AtomicU64,
}

impl Histogram {
    /// An unlabelled histogram over `bounds` (ascending, at most
    /// [`MAX_BUCKETS`] entries).
    pub const fn new(name: &'static str, help: &'static str, bounds: &'static [u64]) -> Self {
        Self::with_label(name, help, "", bounds)
    }

    /// A histogram with a fixed label set (merged with `le` on bucket
    /// lines).
    pub const fn with_label(
        name: &'static str,
        help: &'static str,
        label: &'static str,
        bounds: &'static [u64],
    ) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(bounds.len() <= MAX_BUCKETS, "too many histogram buckets");
        Self {
            name,
            help,
            label,
            bounds,
            counts: [const { AtomicU64::new(0) }; MAX_BUCKETS],
            sum: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    /// Records one observation (no-op while recording is disabled). Values
    /// above the last bound saturate into it.
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        let bucket = self
            .bounds
            .iter()
            .position(|&upper| value <= upper)
            .unwrap_or(self.bounds.len() - 1);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Number of observations in bucket `index` (not cumulative).
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.counts[index].load(Ordering::Relaxed)
    }

    /// The configured bucket upper bounds.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }
}

impl Metric for Histogram {
    fn name(&self) -> &'static str {
        self.name
    }
    fn help(&self) -> &'static str {
        self.help
    }
    fn type_name(&self) -> &'static str {
        "histogram"
    }
    fn render(&self, out: &mut String) {
        let mut cumulative = 0u64;
        let bucket_line = |out: &mut String, le: &str, cumulative: u64| {
            out.push_str(self.name);
            out.push_str("_bucket{");
            if !self.label.is_empty() {
                out.push_str(self.label);
                out.push(',');
            }
            let _ = writeln!(out, "le=\"{le}\"}} {cumulative}");
        };
        let mut saw_inf = false;
        for (index, &bound) in self.bounds.iter().enumerate() {
            cumulative += self.bucket_count(index);
            if bound == u64::MAX {
                bucket_line(out, "+Inf", cumulative);
                saw_inf = true;
            } else {
                bucket_line(out, &bound.to_string(), cumulative);
            }
        }
        if !saw_inf {
            bucket_line(out, "+Inf", cumulative);
        }
        let suffix_line = |out: &mut String, suffix: &str, value: u64| {
            out.push_str(self.name);
            out.push_str(suffix);
            if !self.label.is_empty() {
                let _ = write!(out, "{{{}}}", self.label);
            }
            let _ = writeln!(out, " {value}");
        };
        suffix_line(out, "_sum", self.sum());
        suffix_line(out, "_count", self.count());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static T_COUNTER: Counter = Counter::new("obs_test_counter_total", "a test counter");
    static T_SECONDS: Counter =
        Counter::seconds_from_nanos("obs_test_busy_seconds_total", "a nanos counter");
    static T_GAUGE: Gauge = Gauge::new("obs_test_gauge", "a test gauge");
    static T_HIST_A: Histogram = Histogram::with_label(
        "obs_test_latency_ms",
        "a labelled histogram",
        "endpoint=\"/a\"",
        &[1, 5, 10, u64::MAX],
    );
    static T_HIST_B: Histogram = Histogram::with_label(
        "obs_test_latency_ms",
        "a labelled histogram",
        "endpoint=\"/b\"",
        &[1, 5, 10, u64::MAX],
    );

    #[test]
    fn counters_gauges_histograms_render_exposition_format() {
        set_enabled(true);
        register(&T_COUNTER);
        register(&T_COUNTER); // double registration is a no-op
        register(&T_SECONDS);
        register(&T_HIST_A);
        register(&T_GAUGE);
        register(&T_HIST_B); // same family as T_HIST_A, out of order

        T_COUNTER.inc();
        T_COUNTER.add(2);
        T_SECONDS.add(1_500_000_000);
        T_GAUGE.set(7);
        for v in [0, 1, 2, 7, 10, 11, 1_000_000] {
            T_HIST_A.record(v);
        }
        T_HIST_B.record(3);

        assert_eq!(T_COUNTER.get(), 3);
        assert_eq!(T_HIST_A.count(), 7);
        assert_eq!(T_HIST_A.sum(), 1_000_031);

        let text = render_prometheus();
        assert!(text.contains("# HELP obs_test_counter_total a test counter"));
        assert!(text.contains("# TYPE obs_test_counter_total counter"));
        assert!(text.contains("obs_test_counter_total 3"));
        assert!(text.contains("obs_test_busy_seconds_total 1.500000000"));
        assert!(text.contains("# TYPE obs_test_gauge gauge"));
        assert!(text.contains("obs_test_gauge 7"));
        // Cumulative buckets: ≤1 → {0,1}, ≤5 → +{2}, ≤10 → +{7,10},
        // +Inf → +{11, 1e6}.
        assert!(text.contains("obs_test_latency_ms_bucket{endpoint=\"/a\",le=\"1\"} 2"));
        assert!(text.contains("obs_test_latency_ms_bucket{endpoint=\"/a\",le=\"5\"} 3"));
        assert!(text.contains("obs_test_latency_ms_bucket{endpoint=\"/a\",le=\"10\"} 5"));
        assert!(text.contains("obs_test_latency_ms_bucket{endpoint=\"/a\",le=\"+Inf\"} 7"));
        assert!(text.contains("obs_test_latency_ms_sum{endpoint=\"/a\"} 1000031"));
        assert!(text.contains("obs_test_latency_ms_count{endpoint=\"/a\"} 7"));
        assert!(text.contains("obs_test_latency_ms_bucket{endpoint=\"/b\",le=\"5\"} 1"));

        // One HELP/TYPE block per family, even for multi-label families
        // registered with another family in between.
        let type_lines = text
            .lines()
            .filter(|l| l.starts_with("# TYPE obs_test_latency_ms "))
            .count();
        assert_eq!(type_lines, 1);
        // Every line parses as a comment or `name{labels} value`.
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "{line}"
                );
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!series.is_empty());
            assert!(value.parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn info_metric_renders_identity_label() {
        static T_INFO: Info = Info::new("obs_test_backend_info", "resolved test backend");
        register(&T_INFO);
        assert_eq!(T_INFO.label(), "");
        T_INFO.set_label("backend=\"avx2\"");
        assert_eq!(T_INFO.label(), "backend=\"avx2\"");
        let text = render_prometheus();
        assert!(text.contains("# TYPE obs_test_backend_info gauge"));
        assert!(text.contains("obs_test_backend_info{backend=\"avx2\"} 1"));
    }

    #[test]
    fn disabled_recording_is_a_no_op_and_reenabling_resumes() {
        static LOCAL: Counter = Counter::new("obs_test_toggle_total", "toggle");
        set_enabled(true);
        LOCAL.inc();
        set_enabled(false);
        LOCAL.inc();
        LOCAL.add(10);
        assert_eq!(LOCAL.get(), 1, "disabled adds must not land");
        set_enabled(true);
        LOCAL.inc();
        assert_eq!(LOCAL.get(), 2);
    }

    #[test]
    fn histogram_saturates_at_the_top_bucket() {
        static SAT: Histogram = Histogram::new("obs_test_sat", "saturation", &[10, 100, u64::MAX]);
        set_enabled(true);
        SAT.record(u64::MAX);
        SAT.record(101);
        assert_eq!(SAT.bucket_count(2), 2);
        assert_eq!(SAT.count(), 2);
    }
}
