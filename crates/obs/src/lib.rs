//! Pipeline-wide observability substrate for the Nitho workspace.
//!
//! Every performance-critical layer (FFT plan cache, SOCS synthesis, batched
//! CMLP inference, the condition batcher, the parallel engine, the serving
//! tier) reports into the two facilities here:
//!
//! * [`registry`] — an atomics-based metrics registry: monotone
//!   [`Counter`]s, [`Gauge`]s and fixed-bucket [`Histogram`]s declared as
//!   `static` items in the instrumented crates, registered once, and
//!   rendered on demand in Prometheus text exposition format
//!   ([`render_prometheus`]). The hot path is a relaxed atomic op — no
//!   locks, no heap allocation after registration (pinned by
//!   `tests/hot_path_alloc.rs` under the workspace counting allocator).
//! * [`trace`] — a lightweight span layer: RAII [`trace::SpanGuard`] stage
//!   guards push `(name, thread, start, duration)` events into a bounded,
//!   preallocated ring buffer, exported as Chrome `trace_event` JSON
//!   (`chrome://tracing` / Perfetto loadable). Activated by
//!   `NITHO_TRACE=<path>` and dumped on shutdown; when inactive a span
//!   costs one relaxed atomic load.
//!
//! # Out-of-band contract
//!
//! Nothing in this crate may influence the *bytes* of a `/v1/*` response:
//! metrics and traces are observation only, surfaced exclusively through
//! `GET /metrics`, `/healthz` and the trace dump. The serving tier's
//! byte-identity pins (`tests/serve_async.rs`) hold with instrumentation
//! enabled, and the `NITHO_METRICS=0` kill switch exists so the benches can
//! measure the (budgeted, CI-checked) overhead, not so correctness depends
//! on it. See DESIGN.md §11.

#![forbid(unsafe_code)]

pub mod registry;
pub mod trace;

pub use registry::{
    enabled, metric_count, register, render_prometheus, set_enabled, Counter, Gauge, Histogram,
    Info, Metric,
};
pub use trace::{span, SpanGuard};
