//! Lightweight span tracing with Chrome `trace_event` export.
//!
//! [`span`] returns an RAII [`SpanGuard`]; on drop it records a complete
//! (`ph: "X"`) event — name, thread, start offset, duration, nesting depth —
//! into a bounded, preallocated ring buffer that overwrites its oldest
//! entries under pressure (the hot path never allocates or blocks on I/O).
//! Thread identity comes from a process-local counter (stable small
//! integers, so Chrome's per-thread lanes stay readable), and a thread-local
//! depth counter gives each thread its span stack.
//!
//! Tracing is off unless [`init_from_env`] finds `NITHO_TRACE=<path>` (or a
//! test calls [`init_to`]); when off, a span is one relaxed atomic load.
//! [`dump`] serializes the ring as Chrome `trace_event` JSON — loadable in
//! `chrome://tracing` or Perfetto — and is called by `nitho-serve` on
//! shutdown.

use std::cell::Cell;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Ring capacity in events; the newest events win when the buffer wraps.
pub const RING_CAPACITY: usize = 65536;

#[derive(Debug, Clone, Copy)]
struct Event {
    name: &'static str,
    tid: u32,
    depth: u32,
    ts_us: u64,
    dur_us: u64,
}

struct Ring {
    events: Vec<Event>,
    /// Index of the slot the next event lands in once the ring is full.
    next: usize,
    /// Events overwritten after the ring wrapped.
    dropped: u64,
}

impl Ring {
    fn push(&mut self, event: Event) {
        if self.events.len() < self.events.capacity() {
            self.events.push(event);
        } else {
            self.events[self.next] = event;
            self.next = (self.next + 1) % self.events.len();
            self.dropped += 1;
        }
    }
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static PATH: OnceLock<PathBuf> = OnceLock::new();
static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
static BASE: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static THREAD_TID: Cell<u32> = const { Cell::new(0) };
    static SPAN_DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn thread_tid() -> u32 {
    THREAD_TID.with(|cell| {
        let mut tid = cell.get();
        if tid == 0 {
            tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            cell.set(tid);
        }
        tid
    })
}

fn ring() -> &'static Mutex<Ring> {
    RING.get_or_init(|| {
        Mutex::new(Ring {
            events: Vec::with_capacity(RING_CAPACITY),
            next: 0,
            dropped: 0,
        })
    })
}

/// Activates tracing when `NITHO_TRACE=<path>` is set; returns the dump
/// path if so. Safe to call more than once (first path wins).
pub fn init_from_env() -> Option<PathBuf> {
    let path = std::env::var_os("NITHO_TRACE")?;
    if path.is_empty() {
        return None;
    }
    Some(init_to(PathBuf::from(path)))
}

/// Activates tracing with an explicit dump path (tests and embedding
/// binaries). The first call's path wins; later calls keep tracing active.
pub fn init_to(path: PathBuf) -> PathBuf {
    let chosen = PATH.get_or_init(|| path).clone();
    BASE.get_or_init(Instant::now);
    let _ = ring();
    ACTIVE.store(true, Ordering::Release);
    chosen
}

/// `true` once tracing has been activated.
pub fn tracing_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Number of events lost to ring overwrite so far.
pub fn dropped_events() -> u64 {
    if !tracing_active() {
        return 0;
    }
    ring().lock().unwrap_or_else(|p| p.into_inner()).dropped
}

/// Opens a span named `name`; the span records itself when the guard
/// drops. When tracing is inactive this is one relaxed atomic load.
#[must_use = "a span measures the scope of its guard; dropping it immediately records nothing useful"]
pub fn span(name: &'static str) -> SpanGuard {
    if !tracing_active() {
        return SpanGuard { name, start: None };
    }
    SPAN_DEPTH.with(|depth| depth.set(depth.get() + 1));
    SpanGuard {
        name,
        start: Some(Instant::now()),
    }
}

/// RAII guard returned by [`span`]; records a complete event on drop.
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let depth = SPAN_DEPTH.with(|depth| {
            let d = depth.get();
            depth.set(d.saturating_sub(1));
            d
        });
        let base = *BASE.get_or_init(Instant::now);
        let ts_us = start.saturating_duration_since(base).as_micros() as u64;
        let dur_us = start.elapsed().as_micros() as u64;
        let event = Event {
            name: self.name,
            tid: thread_tid(),
            depth,
            ts_us,
            dur_us,
        };
        ring().lock().unwrap_or_else(|p| p.into_inner()).push(event);
    }
}

fn escape_json(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn render_chrome_json(events: &[Event], dropped: u64) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_json(&mut out, event.name);
        let _ = write!(
            out,
            "\",\"cat\":\"nitho\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"depth\":{}}}}}",
            event.ts_us, event.dur_us, event.tid, event.depth
        );
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"droppedEvents\":{dropped}}}}}"
    );
    out
}

/// Writes the collected spans as Chrome `trace_event` JSON to the path
/// chosen at init. Returns `Ok(None)` when tracing was never activated.
/// Events are emitted in timestamp order, so a wrapped ring still loads.
pub fn dump() -> std::io::Result<Option<PathBuf>> {
    if !tracing_active() {
        return Ok(None);
    }
    let path = PATH.get().expect("tracing active implies a path").clone();
    let json = {
        let guard = ring().lock().unwrap_or_else(|p| p.into_inner());
        let mut events = guard.events.clone();
        events.sort_by_key(|e| e.ts_us);
        render_chrome_json(&events, guard.dropped)
    };
    write_atomically(&path, json.as_bytes())?;
    Ok(Some(path))
}

fn write_atomically(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test: ACTIVE/PATH/RING are process-global, so activation in one
    // test would bleed into any other.
    #[test]
    fn spans_record_nest_and_dump_chrome_json() {
        assert!(!tracing_active());
        {
            // Inactive span: a cheap no-op guard.
            let _idle = span("pre.activation");
        }

        let dir = std::env::temp_dir().join(format!("nitho-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let chosen = init_to(path.clone());
        assert_eq!(chosen, path);
        assert!(tracing_active());

        {
            let _outer = span("test.outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
            let _inner = span("test.inner");
        }
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _worker = span("test.worker");
            });
        });

        let dumped = dump().unwrap().expect("active tracing dumps");
        assert_eq!(dumped, path);
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"test.outer\""));
        assert!(json.contains("\"name\":\"test.inner\""));
        assert!(json.contains("\"name\":\"test.worker\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(!json.contains("pre.activation"));
        // The worker thread gets its own tid lane.
        let main_tid = thread_tid();
        assert!(json.contains(&format!("\"tid\":{main_tid}")));
        assert!(json.contains(&format!("\"tid\":{}", main_tid + 1)));
        assert_eq!(dropped_events(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let mut ring = Ring {
            events: Vec::with_capacity(4),
            next: 0,
            dropped: 0,
        };
        for i in 0..6u64 {
            ring.push(Event {
                name: "e",
                tid: 1,
                depth: 1,
                ts_us: i,
                dur_us: 0,
            });
        }
        assert_eq!(ring.events.len(), 4);
        assert_eq!(ring.dropped, 2);
        let mut stamps: Vec<u64> = ring.events.iter().map(|e| e.ts_us).collect();
        stamps.sort_unstable();
        assert_eq!(stamps, vec![2, 3, 4, 5]);
    }

    #[test]
    fn json_escaping_handles_quotes_and_controls() {
        let mut out = String::new();
        escape_json(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "a\\\"b\\\\c\\u000ad");
    }
}
